// daos_ctl exit-code audit: every verb must be scriptable `set -e` style —
// 0 on success, 1 on rejected/unreadable input, 2 on usage errors. One
// table-driven test spawns the real binary (DAOS_CTL_BIN, injected by
// CMake) across all verbs; `record` is skipped only because its 900
// simulated seconds dominate the suite's runtime, not because it differs.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace {

std::string TmpPath(const std::string& name) {
  return "/tmp/daos_ctl_exit_" + std::to_string(::getpid()) + "_" + name;
}

void Spill(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
}

int RunCtl(const std::string& args) {
  // The harness may run with DAOS_FAULTS armed (CI stress legs); the
  // spawned binaries must see a clean plane or success rows turn flaky,
  // so the env is scrubbed inside the child's command line.
  const std::string cmd = "env -u DAOS_FAULTS -u DAOS_FAULT_SEED " +
                          std::string(DAOS_CTL_BIN) + " " + args +
                          " > /dev/null 2>&1";
  const int status = std::system(cmd.c_str());
  if (status == -1 || !WIFEXITED(status)) return -1;
  return WEXITSTATUS(status);
}

TEST(CtlExitCodes, EveryVerbIsScriptable) {
  const std::string checkpoint = TmpPath("ckpt");
  const std::string bundle_ok = TmpPath("bundle_ok");
  const std::string bundle_bad = TmpPath("bundle_bad");
  const std::string csv = TmpPath("trace.csv");
  const std::string csv_bad = TmpPath("bad.csv");
  const std::string dtr = TmpPath("trace.dtr");
  const std::string garbage = TmpPath("garbage");
  const std::string spec_ok = TmpPath("spec_ok");
  const std::string spec_rejected = TmpPath("spec_rejected");
  Spill(bundle_ok,
        "attrs 5000 100000 1000000 10 1000\n"
        "scheme min max min min 2s max pageout\n");
  Spill(bundle_bad, "scheme not a scheme\n");
  Spill(csv,
        "time_us,op,addr,size\n"
        "0,map,0x10000000,1048576\n"
        "0,r,0x10000000,4096\n"
        "5000,w,0x10001000,64\n"
        "20000,unmap,0x10000000,0\n");
  Spill(csv_bad, "time_us,op,addr,size\n0,levitate,0x10,4\n");
  Spill(garbage, "not a checkpoint, not a trace\n");
  Spill(spec_ok,
        "canary 0.25\nramp 0.5 1.0\ngate_epochs 1\n"
        "scheme min max min min 1s max pageout\n");
  Spill(spec_rejected, "canary 2.0\nscheme min max min min 1s max pageout\n");

  struct Row {
    std::string args;
    int expected;
  };
  const std::vector<Row> rows = {
      // Success paths. Order matters: checkpoint/ingest feed restore/replay.
      {"checkpoint " + checkpoint, 0},
      {"restore " + checkpoint, 0},
      {"commit " + bundle_ok, 0},
      {"ingest " + csv + " " + dtr, 0},
      {"replay " + dtr, 0},
      {"fleet-status", 0},
      {"fleet-rollout " + spec_ok, 0},
      {"tier-status", 0},
      // Rejected input -> 1, with nothing half-applied.
      {"commit " + bundle_bad, 1},
      {"restore " + garbage, 1},
      {"ingest " + csv_bad + " " + dtr + ".bad", 1},
      {"replay " + garbage, 1},
      {"fleet-rollout " + spec_rejected, 1},
      // Unreadable/unwritable files -> 1.
      {"commit /nonexistent/bundle", 1},
      {"checkpoint /nonexistent/dir/ckpt", 1},
      {"restore /nonexistent/ckpt", 1},
      {"ingest /nonexistent/trace.csv " + dtr + ".x", 1},
      {"replay /nonexistent/trace.dtr", 1},
      {"fleet-rollout /nonexistent/spec", 1},
      // Usage errors -> 2.
      {"frobnicate", 2},
      {"commit", 2},
      {"checkpoint", 2},
      {"fleet-rollout", 2},
      {"fleet-status extra-arg", 2},
      {"tier-status extra-arg", 2},
      {"replay a b", 2},
  };
  for (const Row& row : rows)
    EXPECT_EQ(RunCtl(row.args), row.expected) << "daos_ctl " << row.args;

  for (const std::string& path :
       {checkpoint, bundle_ok, bundle_bad, csv, csv_bad, dtr, garbage,
        spec_ok, spec_rejected})
    std::remove(path.c_str());
}

TEST(CtlExitCodes, UnhealthyRolloutExitsNonZero) {
  // A rollout that cannot gate (every health sample lost) must abort and
  // exit 1 — the fleet verb's failure signal covers aborts, not just
  // rejected specs.
  const std::string spec = TmpPath("spec_starved");
  Spill(spec,
        "canary 0.25\nramp 1.0\ngate_epochs 1\ntimeout_epochs 3\n"
        "scheme min max min min 1s max pageout\n");
  const std::string cmd =
      "env -u DAOS_FAULT_SEED DAOS_FAULTS='fleet.telemetry_loss p=1.0' " +
      std::string(DAOS_CTL_BIN) + " fleet-rollout " + spec +
      " > /dev/null 2>&1";
  const int status = std::system(cmd.c_str());
  ASSERT_NE(status, -1);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 1);
  std::remove(spec.c_str());
}

}  // namespace
