// Property tests for scheme matching and the text format: randomized
// bounds and regions must agree with a straightforward reference
// implementation, and every serializable scheme must survive a text
// round-trip with identical matching behaviour.
#include <gtest/gtest.h>

#include "damos/parser.hpp"
#include "damos/scheme.hpp"
#include "util/rng.hpp"

namespace daos::damos {
namespace {

damon::MonitoringAttrs PaperAttrs() {
  return damon::MonitoringAttrs::PaperDefaults();
}

/// Straight-line reference matcher, written independently of
/// Scheme::Matches.
bool ReferenceMatches(const SchemeBounds& b, const damon::Region& r,
                      const damon::MonitoringAttrs& attrs) {
  if (r.size() < b.min_size) return false;
  if (b.max_size != kMaxU64 && r.size() > b.max_size) return false;
  const double freq = r.nr_accesses;
  if (freq < b.min_freq.ToSamples(attrs)) return false;
  if (freq > b.max_freq.ToSamples(attrs)) return false;
  const double age_us =
      static_cast<double>(r.age) * attrs.aggregation_interval;
  if (age_us < static_cast<double>(b.min_age)) return false;
  if (b.max_age != kMaxU64 && age_us > static_cast<double>(b.max_age))
    return false;
  return true;
}

SchemeBounds RandomBounds(Rng& rng) {
  SchemeBounds b;
  b.min_size = rng.NextBounded(64) * MiB;
  b.max_size = rng.NextBool(0.3) ? kMaxU64
                                 : b.min_size + rng.NextBounded(512) * MiB;
  if (rng.NextBool(0.5)) {
    // Whole-percent values so the "%.2f%%" text form is lossless.
    b.min_freq =
        FreqBound::Percent(static_cast<double>(rng.NextBounded(101)) / 100.0);
    b.max_freq =
        rng.NextBool(0.5)
            ? FreqBound::MaxValue()
            : FreqBound::Percent(std::min(
                  1.0, b.min_freq.value +
                           static_cast<double>(rng.NextBounded(101)) / 100.0));
  } else {
    b.min_freq = FreqBound::Samples(static_cast<double>(rng.NextBounded(20)));
    b.max_freq = FreqBound::Samples(b.min_freq.value +
                                    static_cast<double>(rng.NextBounded(20)));
  }
  b.min_age = rng.NextBounded(120) * kUsPerSec;
  b.max_age =
      rng.NextBool(0.3) ? kMaxU64 : b.min_age + rng.NextBounded(300) * kUsPerSec;
  const damon::DamosAction actions[] = {
      damon::DamosAction::kWillneed, damon::DamosAction::kCold,
      damon::DamosAction::kPageout,  damon::DamosAction::kHugepage,
      damon::DamosAction::kNohugepage, damon::DamosAction::kStat};
  b.action = actions[rng.NextBounded(6)];
  return b;
}

damon::Region RandomRegion(Rng& rng) {
  damon::Region r;
  r.start = rng.NextBounded(1024) * MiB;
  r.end = r.start + (1 + rng.NextBounded(768)) * MiB;
  r.nr_accesses = static_cast<std::uint32_t>(rng.NextBounded(21));
  r.age = static_cast<std::uint32_t>(rng.NextBounded(2000));
  return r;
}

class SchemePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SchemePropertyTest, MatchesAgreesWithReference) {
  Rng rng(GetParam() * 97 + 11);
  const auto attrs = PaperAttrs();
  for (int i = 0; i < 500; ++i) {
    const SchemeBounds b = RandomBounds(rng);
    const damon::Region r = RandomRegion(rng);
    const Scheme scheme(b);
    EXPECT_EQ(scheme.Matches(r, attrs), ReferenceMatches(b, r, attrs))
        << scheme.ToText() << " vs region size=" << r.size()
        << " freq=" << r.nr_accesses << " age=" << r.age;
  }
}

TEST_P(SchemePropertyTest, TextRoundTripPreservesMatching) {
  Rng rng(GetParam() * 131 + 3);
  const auto attrs = PaperAttrs();
  for (int i = 0; i < 100; ++i) {
    const Scheme original(RandomBounds(rng));
    const ParseResult reparsed = ParseSchemeLine(original.ToText());
    ASSERT_TRUE(reparsed.ok()) << original.ToText();
    const Scheme& copy = reparsed.schemes[0];
    EXPECT_EQ(copy.action(), original.action());
    // Matching behaviour must survive the round trip for random regions.
    // (Byte sizes are formatted with one decimal, so probe with region
    // sizes away from the rounded boundaries.)
    for (int j = 0; j < 50; ++j) {
      damon::Region r = RandomRegion(rng);
      r.start = AlignDown(r.start, 8 * MiB);
      r.end = r.start + AlignUp(r.end - r.start, 8 * MiB);
      EXPECT_EQ(copy.Matches(r, attrs), original.Matches(r, attrs))
          << original.ToText() << " -> " << copy.ToText();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchemePropertyTest, ::testing::Range(1, 6));

TEST(SchemeBoundaryTest, SizeBoundsAreInclusive) {
  SchemeBounds b;
  b.min_size = 4 * MiB;
  b.max_size = 8 * MiB;
  const Scheme s(b);
  damon::Region r;
  r.start = 0;
  r.end = 4 * MiB;
  EXPECT_TRUE(s.Matches(r, PaperAttrs()));
  r.end = 8 * MiB;
  EXPECT_TRUE(s.Matches(r, PaperAttrs()));
  r.end = 8 * MiB + kPageSize;
  EXPECT_FALSE(s.Matches(r, PaperAttrs()));
}

TEST(SchemeBoundaryTest, FreqPercentBoundsAreInclusive) {
  // 50 % of 20 checks = 10 samples; exactly 10 must match both as a
  // minimum and as a maximum.
  SchemeBounds lo;
  lo.min_freq = FreqBound::Percent(0.5);
  SchemeBounds hi;
  hi.max_freq = FreqBound::Percent(0.5);
  damon::Region r;
  r.start = 0;
  r.end = MiB;
  r.nr_accesses = 10;
  EXPECT_TRUE(Scheme(lo).Matches(r, PaperAttrs()));
  EXPECT_TRUE(Scheme(hi).Matches(r, PaperAttrs()));
}

TEST(SchemeBoundaryTest, AgeExactlyAtMinMatches) {
  SchemeBounds b;
  b.min_age = 2 * kUsPerSec;  // age 20 at 100 ms aggregation
  damon::Region r;
  r.start = 0;
  r.end = MiB;
  r.age = 20;
  EXPECT_TRUE(Scheme(b).Matches(r, PaperAttrs()));
  r.age = 19;
  EXPECT_FALSE(Scheme(b).Matches(r, PaperAttrs()));
}

TEST(SchemeBoundaryTest, AttrsChangeRescalesThresholds) {
  // The same scheme becomes stricter in sample terms when the aggregation
  // window shrinks — thresholds are specified in time/percent, not raw
  // counts, exactly so schemes survive attrs changes.
  SchemeBounds b;
  b.min_freq = FreqBound::Percent(0.5);
  const Scheme s(b);
  damon::Region r;
  r.start = 0;
  r.end = MiB;
  r.nr_accesses = 6;

  damon::MonitoringAttrs coarse;  // 20 checks -> needs >= 10
  EXPECT_FALSE(s.Matches(r, coarse));
  damon::MonitoringAttrs fine;
  fine.aggregation_interval = 50 * kUsPerMs;  // 10 checks -> needs >= 5
  EXPECT_TRUE(s.Matches(r, fine));
}

}  // namespace
}  // namespace daos::damos
