#include "util/strings.hpp"

#include <gtest/gtest.h>

namespace daos {
namespace {

TEST(SplitWhitespaceTest, Basic) {
  const auto toks = SplitWhitespace("a bb  ccc");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0], "a");
  EXPECT_EQ(toks[1], "bb");
  EXPECT_EQ(toks[2], "ccc");
}

TEST(SplitWhitespaceTest, LeadingTrailingAndTabs) {
  const auto toks = SplitWhitespace("\t  x\ty \n z  ");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0], "x");
  EXPECT_EQ(toks[2], "z");
}

TEST(SplitWhitespaceTest, Empty) {
  EXPECT_TRUE(SplitWhitespace("").empty());
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(SplitCharTest, KeepsEmptyFields) {
  const auto toks = SplitChar("a,,b,", ',');
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_EQ(toks[0], "a");
  EXPECT_EQ(toks[1], "");
  EXPECT_EQ(toks[2], "b");
  EXPECT_EQ(toks[3], "");
}

TEST(SplitCharTest, NoDelimiter) {
  const auto toks = SplitChar("abc", ',');
  ASSERT_EQ(toks.size(), 1u);
  EXPECT_EQ(toks[0], "abc");
}

TEST(TrimWhitespaceTest, Basic) {
  EXPECT_EQ(TrimWhitespace("  hi  "), "hi");
  EXPECT_EQ(TrimWhitespace("hi"), "hi");
  EXPECT_EQ(TrimWhitespace("\t\n"), "");
  EXPECT_EQ(TrimWhitespace(""), "");
}

TEST(StripCommentTest, Basic) {
  EXPECT_EQ(StripComment("code # comment"), "code ");
  EXPECT_EQ(StripComment("# all comment"), "");
  EXPECT_EQ(StripComment("no comment"), "no comment");
}

TEST(ToLowerTest, Basic) {
  EXPECT_EQ(ToLower("PageOut"), "pageout");
  EXPECT_EQ(ToLower("2MB"), "2mb");
}

TEST(StartsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("parsec3/canneal", "parsec3"));
  EXPECT_FALSE(StartsWith("parsec3", "parsec3/canneal"));
  EXPECT_TRUE(StartsWith("x", ""));
}

}  // namespace
}  // namespace daos
