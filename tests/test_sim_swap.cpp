#include "sim/swap.hpp"

#include <gtest/gtest.h>

namespace daos::sim {
namespace {

TEST(SwapConfigTest, FactoryKinds) {
  EXPECT_EQ(SwapConfig::Zram().kind, SwapKind::kZram);
  EXPECT_EQ(SwapConfig::File().kind, SwapKind::kFile);
  EXPECT_EQ(SwapConfig::Nvm().kind, SwapKind::kNvm);
  EXPECT_EQ(SwapConfig::None().kind, SwapKind::kNone);
}

TEST(SwapConfigTest, ZramLivesInDram) {
  EXPECT_TRUE(SwapConfig::Zram().occupies_dram);
  EXPECT_FALSE(SwapConfig::File().occupies_dram);
  EXPECT_FALSE(SwapConfig::Nvm().occupies_dram);
}

TEST(SwapConfigTest, LatencyOrdering) {
  // zram must be much faster to read than file swap; NVM writes slower
  // than reads (the paper's asymmetry note).
  EXPECT_LT(SwapConfig::Zram().page_in_us, SwapConfig::File().page_in_us);
  EXPECT_LT(SwapConfig::Nvm().page_in_us, SwapConfig::Nvm().page_out_us);
}

TEST(SwapKindNameTest, AllNamed) {
  EXPECT_EQ(SwapKindName(SwapKind::kZram), "zram");
  EXPECT_EQ(SwapKindName(SwapKind::kFile), "file");
  EXPECT_EQ(SwapKindName(SwapKind::kNvm), "nvm");
  EXPECT_EQ(SwapKindName(SwapKind::kNone), "none");
}

TEST(SwapDeviceTest, DisabledRejectsStores) {
  SwapDevice dev(SwapConfig::None());
  EXPECT_FALSE(dev.Enabled());
  EXPECT_FALSE(dev.StorePage(3.0));
}

TEST(SwapDeviceTest, StoreAndReleaseAccounting) {
  SwapDevice dev(SwapConfig::Zram(1 * MiB));
  EXPECT_TRUE(dev.StorePage(2.0));
  EXPECT_EQ(dev.used_slots(), 1u);
  EXPECT_EQ(dev.stored_bytes(), kPageSize / 2);
  dev.ReleasePage(2.0);
  EXPECT_EQ(dev.used_slots(), 0u);
  EXPECT_EQ(dev.stored_bytes(), 0u);
}

TEST(SwapDeviceTest, CompressionRatioShrinksFootprint) {
  SwapDevice dev(SwapConfig::Zram(1 * MiB));
  ASSERT_TRUE(dev.StorePage(4.0));
  EXPECT_EQ(dev.stored_bytes(), kPageSize / 4);
}

TEST(SwapDeviceTest, RatioBelowOneClamped) {
  SwapDevice dev(SwapConfig::Zram(1 * MiB));
  ASSERT_TRUE(dev.StorePage(0.5));  // incompressible page
  EXPECT_EQ(dev.stored_bytes(), kPageSize);
}

TEST(SwapDeviceTest, CapacityEnforced) {
  // 2 uncompressed pages fit, a third does not.
  SwapDevice dev(SwapConfig{SwapKind::kFile, 2 * kPageSize, 90, 35, false});
  EXPECT_TRUE(dev.StorePage(1.0));
  EXPECT_TRUE(dev.StorePage(1.0));
  EXPECT_FALSE(dev.StorePage(1.0));
  EXPECT_EQ(dev.used_slots(), 2u);
}

TEST(SwapDeviceTest, CompressionStretchesCapacity) {
  SwapDevice dev(SwapConfig{SwapKind::kZram, 2 * kPageSize, 6, 4, true});
  // At ratio 2.0, four pages fit where two uncompressed would.
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(dev.StorePage(2.0));
  EXPECT_FALSE(dev.StorePage(2.0));
}

TEST(SwapDeviceTest, DramBytesOnlyForZram) {
  SwapDevice zram(SwapConfig::Zram(1 * MiB));
  SwapDevice file(SwapConfig::File(1 * MiB));
  ASSERT_TRUE(zram.StorePage(2.0));
  ASSERT_TRUE(file.StorePage(2.0));
  EXPECT_GT(zram.dram_bytes(), 0u);
  EXPECT_EQ(file.dram_bytes(), 0u);
}

TEST(SwapDeviceTest, InOutCounters) {
  SwapDevice dev(SwapConfig::Zram(1 * MiB));
  dev.StorePage(3.0);
  dev.StorePage(3.0);
  dev.CountPageIn();
  EXPECT_EQ(dev.total_outs(), 2u);
  EXPECT_EQ(dev.total_ins(), 1u);
}

TEST(SwapDeviceTest, ReleaseBelowZeroSaturates) {
  SwapDevice dev(SwapConfig::Zram(1 * MiB));
  dev.ReleasePage(3.0);
  EXPECT_EQ(dev.used_slots(), 0u);
  EXPECT_EQ(dev.stored_bytes(), 0u);
}

}  // namespace
}  // namespace daos::sim
