#include "workload/profile.hpp"

#include <gtest/gtest.h>

#include <set>

namespace daos::workload {
namespace {

TEST(ProfilesTest, TwentyFourWorkloads) {
  // Paper §4: "we run 24 realistic workloads from Parsec3 and Splash-2x".
  EXPECT_EQ(AllProfiles().size(), 24u);
  int parsec = 0, splash = 0;
  for (const WorkloadProfile& p : AllProfiles()) {
    if (p.suite == "parsec3") ++parsec;
    if (p.suite == "splash2x") ++splash;
  }
  EXPECT_EQ(parsec, 12);
  EXPECT_EQ(splash, 12);
}

TEST(ProfilesTest, NamesUnique) {
  std::set<std::string> names;
  for (const WorkloadProfile& p : AllProfiles()) names.insert(p.name);
  EXPECT_EQ(names.size(), 24u);
}

TEST(ProfilesTest, FindByName) {
  const WorkloadProfile* p = FindProfile("parsec3/freqmine");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->suite, "parsec3");
  EXPECT_EQ(FindProfile("parsec3/doesnotexist"), nullptr);
}

TEST(ProfilesTest, Figure4SubsetExists) {
  const auto names = Figure4Names();
  EXPECT_EQ(names.size(), 16u);  // the paper plots 16 of 24
  for (const std::string& n : names) {
    EXPECT_NE(FindProfile(n), nullptr) << n;
  }
}

TEST(ProfilesTest, GroupsPartitionSanely) {
  for (const WorkloadProfile& p : AllProfiles()) {
    ASSERT_FALSE(p.groups.empty()) << p.name;
    double total = 0.0;
    for (const GroupSpec& g : p.groups) {
      EXPECT_GT(g.size_frac, 0.0) << p.name;
      EXPECT_GT(g.density, 0.0) << p.name;
      EXPECT_LE(g.density, 1.0) << p.name;
      total += g.size_frac;
    }
    EXPECT_LE(total, 1.0 + 1e-9) << p.name;
    EXPECT_GT(total, 0.5) << p.name;  // most of the heap is described
  }
}

TEST(ProfilesTest, EveryProfileHasAHotGroup) {
  for (const WorkloadProfile& p : AllProfiles()) {
    EXPECT_DOUBLE_EQ(p.groups.front().period_s, 0.0) << p.name;
  }
}

TEST(ProfilesTest, RuntimesCompressed) {
  // Design decision: nominal runtimes compressed into [60, 200] s.
  for (const WorkloadProfile& p : AllProfiles()) {
    EXPECT_GE(p.runtime_s, 55.0) << p.name;
    EXPECT_LE(p.runtime_s, 200.0) << p.name;
  }
}

TEST(ProfilesTest, FreqmineIsThePrclBestCase) {
  // §4.2: freqmine achieves 91 % memory saving with 0.9 % slowdown, which
  // requires a dominant cold fraction and a small hot set.
  const WorkloadProfile* p = FindProfile("parsec3/freqmine");
  ASSERT_NE(p, nullptr);
  double cold = 0.0;
  for (const GroupSpec& g : p->groups)
    if (g.period_s < 0) cold += g.size_frac;
  EXPECT_GT(cold, 0.85);
  EXPECT_LT(static_cast<double>(p->HotBytes()) /
                static_cast<double>(p->data_bytes),
            0.15);
}

TEST(ProfilesTest, OceanNcpIsTheThpBestCase) {
  // §4.2: ocean_ncp gets the largest THP gain (27.5 %) and bloat (82 %).
  const WorkloadProfile* ocean = FindProfile("splash2x/ocean_ncp");
  ASSERT_NE(ocean, nullptr);
  for (const WorkloadProfile& p : AllProfiles()) {
    EXPECT_LE(p.thp_gain, ocean->thp_gain) << p.name;
  }
  // Sparse blocks are what produces the bloat.
  for (const GroupSpec& g : ocean->groups) EXPECT_LT(g.density, 0.7);
}

TEST(ProfilesTest, NoisyWorkloadsFlagged) {
  // §3.4: canneal, streamcluster and x264 "vary too much so that it is
  // hard to recognize the pattern".
  for (const char* name :
       {"parsec3/canneal", "parsec3/streamcluster", "parsec3/x264"}) {
    const WorkloadProfile* p = FindProfile(name);
    ASSERT_NE(p, nullptr);
    EXPECT_GE(p->noise, 0.05) << name;
  }
  EXPECT_LE(FindProfile("parsec3/freqmine")->noise, 0.02);
}

TEST(ProfilesTest, ExpectedRssBelowMapped) {
  for (const WorkloadProfile& p : AllProfiles()) {
    EXPECT_LE(p.ExpectedRssBytes(), p.data_bytes) << p.name;
    EXPECT_GT(p.ExpectedRssBytes(), 0u) << p.name;
  }
}

TEST(ProfilesTest, HotBytesSubsetOfRss) {
  for (const WorkloadProfile& p : AllProfiles()) {
    EXPECT_LE(p.HotBytes(), p.ExpectedRssBytes()) << p.name;
  }
}

TEST(ProfilesTest, AddressSpaceSizesMatchFigure6Scale) {
  // Figure 6 y-axes: ocean_ncp ~25 GB is the biggest; splash raytrace is
  // tens of MiB.
  EXPECT_GT(FindProfile("splash2x/ocean_ncp")->data_bytes, 16 * GiB);
  EXPECT_LT(FindProfile("splash2x/raytrace")->data_bytes, 256 * MiB);
}

}  // namespace
}  // namespace daos::workload
