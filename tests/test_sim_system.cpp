#include "sim/system.hpp"

#include <gtest/gtest.h>

namespace daos::sim {
namespace {

class NullSource final : public AccessSource {
 public:
  void BuildLayout(AddressSpace& space) override {
    space.Map(0x10000, kPageSize, "stub");
  }
  TouchStats EmitQuantum(AddressSpace&, SimTimeUs, SimTimeUs) override {
    return {};
  }
};

ProcessParams Work(double seconds) {
  ProcessParams p;
  p.name = "w";
  p.total_work_us = seconds * kUsPerSec;
  p.mem_boundness = 1.0;
  return p;
}

TEST(SystemTest, ClockAdvancesByQuantum) {
  System system(MachineSpec{"t", 4, 3.0, GiB}, SwapConfig::Zram(),
                ThpMode::kNever, 5 * kUsPerMs);
  EXPECT_EQ(system.Now(), 0u);
  system.Step();
  EXPECT_EQ(system.Now(), 5 * kUsPerMs);
}

TEST(SystemTest, RunStopsWhenAllProcessesFinish) {
  System system(MachineSpec{"t", 4, 3.0, GiB}, SwapConfig::Zram());
  system.AddProcess(Work(0.05), std::make_unique<NullSource>());
  const SystemMetrics m = system.Run(10 * kUsPerSec);
  EXPECT_TRUE(m.processes.front().finished);
  EXPECT_LT(m.elapsed_s, 1.0);
}

TEST(SystemTest, RunStopsAtDeadline) {
  System system(MachineSpec{"t", 4, 3.0, GiB}, SwapConfig::Zram());
  ProcessParams forever = Work(0.001);
  forever.run_forever = true;
  system.AddProcess(std::move(forever), std::make_unique<NullSource>());
  const SystemMetrics m = system.Run(50 * kUsPerMs);
  EXPECT_NEAR(m.elapsed_s, 0.05, 0.002);
  EXPECT_FALSE(m.processes.front().finished);
}

TEST(SystemTest, EmptySystemRunsToDeadline) {
  System system(MachineSpec{"t", 4, 3.0, GiB}, SwapConfig::Zram());
  const SystemMetrics m = system.Run(10 * kUsPerMs);
  EXPECT_NEAR(m.elapsed_s, 0.01, 1e-6);
}

TEST(SystemTest, DaemonSteppedEveryQuantum) {
  System system(MachineSpec{"t", 4, 3.0, GiB}, SwapConfig::Zram());
  system.AddProcess(Work(10), std::make_unique<NullSource>());
  int calls = 0;
  system.RegisterDaemon([&calls](SimTimeUs, SimTimeUs) {
    ++calls;
    return 0.0;
  });
  for (int i = 0; i < 7; ++i) system.Step();
  EXPECT_EQ(calls, 7);
}

TEST(SystemTest, DaemonInterferenceReachesProcesses) {
  System system(MachineSpec{"t", 4, 3.0, GiB}, SwapConfig::Zram());
  Process& proc = system.AddProcess(Work(10), std::make_unique<NullSource>());
  system.RegisterDaemon([](SimTimeUs, SimTimeUs) { return 100.0; });
  for (int i = 0; i < 10; ++i) system.Step();
  EXPECT_NEAR(proc.Metrics(system.Now()).interference_s, 0.001, 1e-6);
}

TEST(SystemTest, InterferenceSplitAcrossActiveProcesses) {
  System system(MachineSpec{"t", 4, 3.0, GiB}, SwapConfig::Zram());
  Process& a = system.AddProcess(Work(10), std::make_unique<NullSource>());
  Process& b = system.AddProcess(Work(10), std::make_unique<NullSource>());
  system.RegisterDaemon([](SimTimeUs, SimTimeUs) { return 100.0; });
  for (int i = 0; i < 10; ++i) system.Step();
  EXPECT_NEAR(a.Metrics(system.Now()).interference_s, 0.0005, 1e-6);
  EXPECT_NEAR(b.Metrics(system.Now()).interference_s, 0.0005, 1e-6);
}

TEST(SystemTest, MultipleProcessesAllFinish) {
  System system(MachineSpec{"t", 4, 3.0, GiB}, SwapConfig::Zram());
  system.AddProcess(Work(0.02), std::make_unique<NullSource>());
  system.AddProcess(Work(0.05), std::make_unique<NullSource>());
  system.AddProcess(Work(0.01), std::make_unique<NullSource>());
  const SystemMetrics m = system.Run(kUsPerSec);
  for (const ProcessMetrics& pm : m.processes) EXPECT_TRUE(pm.finished);
  EXPECT_EQ(m.processes.size(), 3u);
}

TEST(SystemTest, PidsAreSequential) {
  System system(MachineSpec{"t", 4, 3.0, GiB}, SwapConfig::Zram());
  Process& a = system.AddProcess(Work(1), std::make_unique<NullSource>());
  Process& b = system.AddProcess(Work(1), std::make_unique<NullSource>());
  EXPECT_EQ(a.pid(), 1);
  EXPECT_EQ(b.pid(), 2);
}

// --- event-driven stepping ---------------------------------------------------

TEST(SystemTest, HintedDaemonSkipsIdleQuantaInRun) {
  // No processes, one hinted daemon due every 10 ms on a 1 ms quantum:
  // Run() must jump the clock between deadlines instead of stepping every
  // quantum, and still invoke the daemon at exactly the times dense
  // stepping would have.
  System system(MachineSpec{"t", 4, 3.0, GiB}, SwapConfig::Zram());
  std::vector<SimTimeUs> invoked_at;
  SimTimeUs next_due = 0;
  system.RegisterDaemon(
      [&](SimTimeUs now, SimTimeUs) {
        if (now >= next_due) {
          invoked_at.push_back(now);
          next_due = now + 10 * kUsPerMs;
        }
        return 0.0;
      },
      [&](SimTimeUs) { return next_due; });
  system.Run(100 * kUsPerMs);
  EXPECT_EQ(system.Now(), 100 * kUsPerMs);
  // Due times land on exact 10 ms boundaries: 0, 10ms, ..., 90ms.
  ASSERT_EQ(invoked_at.size(), 10u);
  for (std::size_t i = 0; i < invoked_at.size(); ++i)
    EXPECT_EQ(invoked_at[i], i * 10 * kUsPerMs);
}

TEST(SystemTest, UnhintedDaemonPinsDenseStepping) {
  System system(MachineSpec{"t", 4, 3.0, GiB}, SwapConfig::Zram());
  int hinted_calls = 0;
  int unhinted_calls = 0;
  system.RegisterDaemon(
      [&](SimTimeUs, SimTimeUs) {
        ++hinted_calls;
        return 0.0;
      },
      [&](SimTimeUs now) { return now + kUsPerSec; });
  system.RegisterDaemon([&](SimTimeUs, SimTimeUs) {
    ++unhinted_calls;
    return 0.0;
  });
  system.Run(50 * kUsPerMs);
  // The unhinted daemon forces every quantum to execute — and every
  // executed quantum steps all daemons, hinted or not.
  EXPECT_EQ(unhinted_calls, 50);
  EXPECT_EQ(hinted_calls, 50);
}

TEST(SystemTest, UnfinishedProcessPinsDenseStepping) {
  System system(MachineSpec{"t", 4, 3.0, GiB}, SwapConfig::Zram());
  ProcessParams forever = Work(0.001);
  forever.run_forever = true;
  system.AddProcess(std::move(forever), std::make_unique<NullSource>());
  int calls = 0;
  system.RegisterDaemon(
      [&](SimTimeUs, SimTimeUs) {
        ++calls;
        return 0.0;
      },
      [&](SimTimeUs now) { return now + kUsPerSec; });
  system.Run(50 * kUsPerMs);
  EXPECT_EQ(calls, 50);
}

TEST(SystemTest, JumpedRunMatchesDenseClockAtDeadline) {
  // Whatever mix of jumps and steps Run() chooses, the consumed slice must
  // be exactly the dense one — chaos fault windows arm at slice boundaries.
  System dense(MachineSpec{"t", 4, 3.0, GiB}, SwapConfig::Zram());
  System jumpy(MachineSpec{"t", 4, 3.0, GiB}, SwapConfig::Zram());
  jumpy.RegisterDaemon([](SimTimeUs, SimTimeUs) { return 0.0; },
                       [](SimTimeUs now) { return now + 7 * kUsPerMs; });
  for (int slice = 0; slice < 5; ++slice) {
    dense.Run(13 * kUsPerMs);
    jumpy.Run(13 * kUsPerMs);
    EXPECT_EQ(jumpy.Now(), dense.Now());
  }
}

}  // namespace
}  // namespace daos::sim
