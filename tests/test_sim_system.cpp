#include "sim/system.hpp"

#include <gtest/gtest.h>

namespace daos::sim {
namespace {

class NullSource final : public AccessSource {
 public:
  void BuildLayout(AddressSpace& space) override {
    space.Map(0x10000, kPageSize, "stub");
  }
  TouchStats EmitQuantum(AddressSpace&, SimTimeUs, SimTimeUs) override {
    return {};
  }
};

ProcessParams Work(double seconds) {
  ProcessParams p;
  p.name = "w";
  p.total_work_us = seconds * kUsPerSec;
  p.mem_boundness = 1.0;
  return p;
}

TEST(SystemTest, ClockAdvancesByQuantum) {
  System system(MachineSpec{"t", 4, 3.0, GiB}, SwapConfig::Zram(),
                ThpMode::kNever, 5 * kUsPerMs);
  EXPECT_EQ(system.Now(), 0u);
  system.Step();
  EXPECT_EQ(system.Now(), 5 * kUsPerMs);
}

TEST(SystemTest, RunStopsWhenAllProcessesFinish) {
  System system(MachineSpec{"t", 4, 3.0, GiB}, SwapConfig::Zram());
  system.AddProcess(Work(0.05), std::make_unique<NullSource>());
  const SystemMetrics m = system.Run(10 * kUsPerSec);
  EXPECT_TRUE(m.processes.front().finished);
  EXPECT_LT(m.elapsed_s, 1.0);
}

TEST(SystemTest, RunStopsAtDeadline) {
  System system(MachineSpec{"t", 4, 3.0, GiB}, SwapConfig::Zram());
  ProcessParams forever = Work(0.001);
  forever.run_forever = true;
  system.AddProcess(std::move(forever), std::make_unique<NullSource>());
  const SystemMetrics m = system.Run(50 * kUsPerMs);
  EXPECT_NEAR(m.elapsed_s, 0.05, 0.002);
  EXPECT_FALSE(m.processes.front().finished);
}

TEST(SystemTest, EmptySystemRunsToDeadline) {
  System system(MachineSpec{"t", 4, 3.0, GiB}, SwapConfig::Zram());
  const SystemMetrics m = system.Run(10 * kUsPerMs);
  EXPECT_NEAR(m.elapsed_s, 0.01, 1e-6);
}

TEST(SystemTest, DaemonSteppedEveryQuantum) {
  System system(MachineSpec{"t", 4, 3.0, GiB}, SwapConfig::Zram());
  system.AddProcess(Work(10), std::make_unique<NullSource>());
  int calls = 0;
  system.RegisterDaemon([&calls](SimTimeUs, SimTimeUs) {
    ++calls;
    return 0.0;
  });
  for (int i = 0; i < 7; ++i) system.Step();
  EXPECT_EQ(calls, 7);
}

TEST(SystemTest, DaemonInterferenceReachesProcesses) {
  System system(MachineSpec{"t", 4, 3.0, GiB}, SwapConfig::Zram());
  Process& proc = system.AddProcess(Work(10), std::make_unique<NullSource>());
  system.RegisterDaemon([](SimTimeUs, SimTimeUs) { return 100.0; });
  for (int i = 0; i < 10; ++i) system.Step();
  EXPECT_NEAR(proc.Metrics(system.Now()).interference_s, 0.001, 1e-6);
}

TEST(SystemTest, InterferenceSplitAcrossActiveProcesses) {
  System system(MachineSpec{"t", 4, 3.0, GiB}, SwapConfig::Zram());
  Process& a = system.AddProcess(Work(10), std::make_unique<NullSource>());
  Process& b = system.AddProcess(Work(10), std::make_unique<NullSource>());
  system.RegisterDaemon([](SimTimeUs, SimTimeUs) { return 100.0; });
  for (int i = 0; i < 10; ++i) system.Step();
  EXPECT_NEAR(a.Metrics(system.Now()).interference_s, 0.0005, 1e-6);
  EXPECT_NEAR(b.Metrics(system.Now()).interference_s, 0.0005, 1e-6);
}

TEST(SystemTest, MultipleProcessesAllFinish) {
  System system(MachineSpec{"t", 4, 3.0, GiB}, SwapConfig::Zram());
  system.AddProcess(Work(0.02), std::make_unique<NullSource>());
  system.AddProcess(Work(0.05), std::make_unique<NullSource>());
  system.AddProcess(Work(0.01), std::make_unique<NullSource>());
  const SystemMetrics m = system.Run(kUsPerSec);
  for (const ProcessMetrics& pm : m.processes) EXPECT_TRUE(pm.finished);
  EXPECT_EQ(m.processes.size(), 3u);
}

TEST(SystemTest, PidsAreSequential) {
  System system(MachineSpec{"t", 4, 3.0, GiB}, SwapConfig::Zram());
  Process& a = system.AddProcess(Work(1), std::make_unique<NullSource>());
  Process& b = system.AddProcess(Work(1), std::make_unique<NullSource>());
  EXPECT_EQ(a.pid(), 1);
  EXPECT_EQ(b.pid(), 2);
}

}  // namespace
}  // namespace daos::sim
