// Malformed-input hardening: the text interfaces (scheme parser, debugfs
// writes) must reject garbage with line-accurate errors and leave all
// installed state untouched — never crash, never half-apply.
#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "chaos/campaign.hpp"
#include "damos/parser.hpp"
#include "dbgfs/damon_dbgfs.hpp"
#include "fault/fault.hpp"
#include "dbgfs/tier_fs.hpp"
#include "lifecycle/checkpoint.hpp"
#include "lifecycle/supervisor.hpp"
#include "sim/system.hpp"
#include "sim/tier.hpp"
#include "trace/format.hpp"
#include "trace/ingest.hpp"
#include "util/units.hpp"
#include "workload/generator.hpp"
#include "workload/profile.hpp"

namespace daos {
namespace {

using damos::ParseResult;
using damos::ParseSchemes;

// --- parser ---------------------------------------------------------------

TEST(MalformedParserTest, OverlongLineRejected) {
  const std::string line(600, 'x');
  const ParseResult r = ParseSchemes(line + "\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.errors[0].line_number, 1);
  EXPECT_NE(r.errors[0].message.find("line too long"), std::string::npos);
}

TEST(MalformedParserTest, OverlongLineNumberAccurate) {
  const std::string text =
      "min max min min 2s max pageout\n" + std::string(4096, 'y') + "\n";
  const ParseResult r = ParseSchemes(text);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.errors[0].line_number, 2);
  // The valid line 1 still parsed (ParseSchemes reports per line).
  EXPECT_EQ(r.schemes.size(), 1u);
}

TEST(MalformedParserTest, MinAgeAboveMaxAgeRejected) {
  const ParseResult r = ParseSchemes("min max min min 10s 2s pageout\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.errors[0].message.find("min_age exceeds max_age"),
            std::string::npos);
}

TEST(MalformedParserTest, MinAgeMaxKeywordNotAnOrderingError) {
  // "max max" uses the unbounded sentinel on both sides — legal.
  EXPECT_TRUE(ParseSchemes("min max min min max max stat\n").ok());
}

TEST(MalformedParserTest, MinFreqAboveMaxFreqSameUnitRejected) {
  const ParseResult pct = ParseSchemes("min max 80% 20% min max stat\n");
  ASSERT_FALSE(pct.ok());
  EXPECT_NE(pct.errors[0].message.find("min_freq exceeds max_freq"),
            std::string::npos);
  const ParseResult samples = ParseSchemes("min max 9 3 min max stat\n");
  ASSERT_FALSE(samples.ok());
}

TEST(MalformedParserTest, MixedFreqUnitsNotComparable) {
  // 90% vs 5 samples depends on the monitoring attrs; the parser must not
  // guess an ordering.
  EXPECT_TRUE(ParseSchemes("min max 90% 5 min max stat\n").ok());
}

TEST(MalformedParserTest, GarbageActionRejected) {
  const ParseResult r = ParseSchemes("min max min min 2s max explode\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.errors[0].message.find("unknown action 'explode'"),
            std::string::npos);
}

TEST(MalformedParserTest, MigrateActionTyposRejected) {
  // The real migrate actions parse; near-misses must not silently map to
  // one of them.
  EXPECT_TRUE(ParseSchemes("min max 1 max min max migrate_hot\n").ok());
  EXPECT_TRUE(ParseSchemes("min max min min 1s max migrate_cold\n").ok());
  const ParseResult r =
      ParseSchemes("min max 1 max min max migrate_warm\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.errors[0].line_number, 1);
  EXPECT_NE(r.errors[0].message.find("unknown action 'migrate_warm'"),
            std::string::npos);
}

TEST(MalformedParserTest, EmbeddedNulByteRejectedNotFatal) {
  std::string line = "min max min min 2s max page";
  line.push_back('\0');
  line += "out\n";
  const ParseResult r = ParseSchemes(line);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.errors[0].line_number, 1);
}

TEST(MalformedParserTest, Utf8GarbageRejectedNotFatal) {
  const ParseResult r = ParseSchemes("gr\xc3\xb6\xc3\x9f\x65 max min min 2s max pageout\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.errors[0].message.find("bad min_size"), std::string::npos);
}

TEST(MalformedParserTest, ErrorsCarryExactLineNumbers) {
  const ParseResult r = ParseSchemes(
      "# comment\n"
      "min max min min 2s max pageout\n"
      "\n"
      "min max min min 2s max explode\n"
      "4K 2K min min min max stat\n");
  ASSERT_EQ(r.errors.size(), 2u);
  EXPECT_EQ(r.errors[0].line_number, 4);
  EXPECT_EQ(r.errors[1].line_number, 5);
  EXPECT_NE(r.errors[1].message.find("min_size exceeds max_size"),
            std::string::npos);
  EXPECT_EQ(r.schemes.size(), 1u);
}

// --- governor clauses -----------------------------------------------------

TEST(MalformedGovernorTest, NegativeQuotaSizeRejected) {
  const ParseResult r =
      ParseSchemes("min max min min 2s max pageout quota_sz=-5M\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.errors[0].line_number, 1);
  EXPECT_NE(r.errors[0].message.find("bad quota_sz"), std::string::npos);
}

TEST(MalformedGovernorTest, NegativeQuotaMsRejected) {
  const ParseResult r =
      ParseSchemes("min max min min 2s max pageout quota_ms=-1\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.errors[0].message.find("bad quota_ms"), std::string::npos);
}

TEST(MalformedGovernorTest, ZeroQuotaRejected) {
  // quota_sz=0 would silently disarm the budget the user asked for.
  EXPECT_FALSE(
      ParseSchemes("min max min min 2s max pageout quota_sz=0\n").ok());
  EXPECT_FALSE(
      ParseSchemes("min max min min 2s max pageout quota_reset_ms=0\n").ok());
}

TEST(MalformedGovernorTest, AllZeroPrioWeightsRejected) {
  const ParseResult r =
      ParseSchemes("min max min min 2s max pageout prio_weights=0,0,0\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.errors[0].message.find("prio_weights must not be all zero"),
            std::string::npos);
}

TEST(MalformedGovernorTest, OversizedPrioWeightRejected) {
  const ParseResult r =
      ParseSchemes("min max min min 2s max pageout prio_weights=1,5000,1\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.errors[0].message.find("bad prio_weights component"),
            std::string::npos);
}

TEST(MalformedGovernorTest, WatermarkOrderingRejected) {
  // low > high: the gate would deactivate everywhere.
  const ParseResult r = ParseSchemes(
      "min max min min 2s max pageout wmarks=free_mem_rate,100,500,900\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.errors[0].message.find("high >= mid >= low"),
            std::string::npos);
}

TEST(MalformedGovernorTest, UnknownWatermarkMetricRejected) {
  const ParseResult r = ParseSchemes(
      "min max min min 2s max pageout wmarks=cpu_temp,900,500,100\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.errors[0].message.find("unknown watermark metric"),
            std::string::npos);
}

TEST(MalformedGovernorTest, UnknownClauseRejected) {
  const ParseResult r =
      ParseSchemes("min max min min 2s max pageout turbo=1\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.errors[0].message.find("unknown governor clause 'turbo'"),
            std::string::npos);
}

TEST(MalformedGovernorTest, GovernorErrorsCarryExactLineNumbers) {
  const ParseResult r = ParseSchemes(
      "min max min min 2s max pageout quota_sz=16M\n"
      "min max min min 2s max pageout quota_sz=oops\n"
      "min max min min 2s max pageout wmarks=free_mem_rate,1,2,3\n");
  ASSERT_EQ(r.errors.size(), 2u);
  EXPECT_EQ(r.errors[0].line_number, 2);
  EXPECT_EQ(r.errors[1].line_number, 3);
  EXPECT_EQ(r.schemes.size(), 1u);
}

// --- tier geometry --------------------------------------------------------

sim::TierGeometry ParseGeoExpectError(const std::string& text,
                                      std::string* error) {
  sim::TierGeometry geo;
  EXPECT_FALSE(sim::ParseTierGeometry(text, &geo, error));
  return geo;
}

TEST(MalformedTierTest, UnknownTierKindRejected) {
  std::string error;
  ParseGeoExpectError("dram 64M\nhbm 16G lat=0.2\n", &error);
  EXPECT_NE(error.find("tier line 2"), std::string::npos) << error;
  EXPECT_NE(error.find("unknown tier kind 'hbm'"), std::string::npos);
  EXPECT_NE(error.find("want dram|cxl|zram|file"), std::string::npos);
}

TEST(MalformedTierTest, BadCapacityRejected) {
  std::string error;
  ParseGeoExpectError("dram lots\n", &error);
  EXPECT_NE(error.find("tier line 1: bad capacity 'lots'"),
            std::string::npos)
      << error;
  // Zero capacity is as useless as unparsable.
  ParseGeoExpectError("dram 0\n", &error);
  EXPECT_NE(error.find("bad capacity '0'"), std::string::npos) << error;
}

TEST(MalformedTierTest, NegativeBandwidthRejected) {
  std::string error;
  ParseGeoExpectError("dram 64M\ncxl 1G bw=-1G\n", &error);
  EXPECT_NE(error.find("tier line 2: negative bandwidth '-1G'"),
            std::string::npos)
      << error;
}

TEST(MalformedTierTest, BadLatencyRejected) {
  std::string error;
  ParseGeoExpectError("dram 64M\ncxl 1G lat=fast\n", &error);
  EXPECT_NE(error.find("tier line 2: bad latency 'fast'"), std::string::npos)
      << error;
  ParseGeoExpectError("dram 64M\ncxl 1G lat=-0.5\n", &error);
  EXPECT_NE(error.find("bad latency '-0.5'"), std::string::npos) << error;
}

TEST(MalformedTierTest, FirstTierMustBeDram) {
  std::string error;
  ParseGeoExpectError("cxl 1G lat=0.6\ndram 64M\n", &error);
  EXPECT_NE(error.find("tier line 1: first tier must be dram"),
            std::string::npos)
      << error;
}

TEST(MalformedTierTest, UnknownClauseRejected) {
  std::string error;
  ParseGeoExpectError("dram 64M numa=1\n", &error);
  EXPECT_NE(error.find("tier line 1: unknown clause 'numa=1'"),
            std::string::npos)
      << error;
}

TEST(MalformedTierTest, TooManyTiersRejected) {
  std::string text = "dram 64M\n";
  for (int i = 0; i < 8; ++i) text += "cxl 64M lat=0.5\n";
  std::string error;
  ParseGeoExpectError(text, &error);
  EXPECT_NE(error.find("tier line 9: too many tiers (max 8)"),
            std::string::npos)
      << error;
}

TEST(MalformedTierTest, EmptyGeometryRejected) {
  std::string error;
  ParseGeoExpectError("", &error);
  EXPECT_NE(error.find("tier geometry is empty"), std::string::npos);
  ParseGeoExpectError("# comments only\n\n", &error);
  EXPECT_NE(error.find("tier geometry is empty"), std::string::npos);
}

TEST(MalformedTierTest, RejectedGeometryWriteKeepsPrevious) {
  // The /tier/geometry control file shares the all-or-nothing discipline:
  // a rejected write leaves the installed geometry untouched.
  sim::System system(sim::MachineSpec::I3Metal().GuestOf(),
                     sim::SwapConfig::Zram(), sim::ThpMode::kNever,
                     5 * kUsPerMs);
  dbgfs::PseudoFs fs;
  dbgfs::TierFs tier_fs(&fs, &system.machine());

  ASSERT_TRUE(fs.Write("/tier/geometry", "dram 64M\ncxl 1G lat=0.6\n"));
  const std::string before = fs.Read("/tier/geometry").value();
  ASSERT_TRUE(system.machine().tiered());

  std::string error;
  EXPECT_FALSE(fs.Write("/tier/geometry", "dram 64M\nfloppy 1M\n", &error));
  EXPECT_NE(error.find("tier line 2: unknown tier kind 'floppy'"),
            std::string::npos)
      << error;
  EXPECT_EQ(fs.Read("/tier/geometry").value(), before);
  EXPECT_TRUE(system.machine().tiered());
}

// --- debugfs --------------------------------------------------------------

workload::WorkloadProfile TinyProfile() {
  workload::WorkloadProfile p;
  p.name = "test/malformed";
  p.suite = "test";
  p.data_bytes = 16 * MiB;
  p.runtime_s = 5;
  p.noise = 0;
  p.groups = {workload::GroupSpec{1.0, 0.0, 1.0, 0.3}};
  return p;
}

class MalformedDbgfsTest : public ::testing::Test {
 protected:
  MalformedDbgfsTest()
      : system_(sim::MachineSpec::I3Metal().GuestOf(), sim::SwapConfig::Zram(),
                sim::ThpMode::kNever, 5 * kUsPerMs),
        proc_(system_.AddProcess(workload::ToProcessParams(TinyProfile()),
                                 workload::MakeSource(TinyProfile(), 3))),
        dbgfs_(&system_, &fs_) {}

  sim::System system_;
  sim::Process& proc_;
  dbgfs::PseudoFs fs_;
  dbgfs::DamonDbgfs dbgfs_;
};

TEST_F(MalformedDbgfsTest, RejectedSchemesWriteKeepsPreviousSchemes) {
  ASSERT_TRUE(fs_.Write("/damon/schemes", "min max min min 2s max pageout\n"));
  ASSERT_EQ(dbgfs_.engine().schemes().size(), 1u);
  const std::string before = dbgfs_.engine().schemes()[0].ToText();

  std::string error;
  EXPECT_FALSE(fs_.Write("/damon/schemes",
                         "min max min min 1s max pageout\n"
                         "totally not a scheme\n",
                         &error));
  EXPECT_NE(error.find("line 2"), std::string::npos);
  // All-or-nothing: neither the bad line nor the valid line 1 replaced the
  // installed scheme.
  ASSERT_EQ(dbgfs_.engine().schemes().size(), 1u);
  EXPECT_EQ(dbgfs_.engine().schemes()[0].ToText(), before);
}

TEST_F(MalformedDbgfsTest, RejectedGovernorClauseKeepsPreviousSchemes) {
  ASSERT_TRUE(fs_.Write("/damon/schemes",
                        "min max min min 2s max pageout quota_sz=8M\n"));
  const std::string before = dbgfs_.engine().schemes()[0].ToText();

  std::string error;
  EXPECT_FALSE(fs_.Write("/damon/schemes",
                         "min max min min 2s max pageout quota_sz=-1\n",
                         &error));
  EXPECT_NE(error.find("line 1"), std::string::npos);
  EXPECT_NE(error.find("bad quota_sz"), std::string::npos);
  ASSERT_EQ(dbgfs_.engine().schemes().size(), 1u);
  EXPECT_EQ(dbgfs_.engine().schemes()[0].ToText(), before);
}

TEST_F(MalformedDbgfsTest, OverlongSchemesLineRejected) {
  std::string error;
  EXPECT_FALSE(
      fs_.Write("/damon/schemes", std::string(100 * 1024, 'z'), &error));
  EXPECT_NE(error.find("line too long"), std::string::npos);
  EXPECT_TRUE(dbgfs_.engine().schemes().empty());
}

TEST_F(MalformedDbgfsTest, SchemesWriteWithNulByteRejected) {
  std::string content = "min max min min 2s max stat";
  content.push_back('\0');
  content += "x\n";
  std::string error;
  EXPECT_FALSE(fs_.Write("/damon/schemes", content, &error));
  EXPECT_TRUE(dbgfs_.engine().schemes().empty());
}

TEST_F(MalformedDbgfsTest, BadAttrsRejectedAndUnchanged) {
  const std::string before = fs_.Read("/damon/attrs").value();
  std::string error;
  // min_nr > max_nr is inconsistent.
  EXPECT_FALSE(fs_.Write("/damon/attrs", "5000 100000 1000000 500 10", &error));
  EXPECT_NE(error.find("inconsistent"), std::string::npos);
  EXPECT_FALSE(fs_.Write("/damon/attrs", "garbage in here now五 ok", &error));
  EXPECT_EQ(fs_.Read("/damon/attrs").value(), before);
}

TEST_F(MalformedDbgfsTest, BadTargetsRejectedAndUnchanged) {
  ASSERT_TRUE(
      fs_.Write("/damon/target_ids", std::to_string(proc_.pid())));
  const std::string before = fs_.Read("/damon/target_ids").value();
  std::string error;
  EXPECT_FALSE(fs_.Write("/damon/target_ids", "-3", &error));
  EXPECT_FALSE(fs_.Write("/damon/target_ids", "999999", &error));
  EXPECT_NE(error.find("no such pid"), std::string::npos);
  EXPECT_EQ(fs_.Read("/damon/target_ids").value(), before);
}

TEST_F(MalformedDbgfsTest, MonitorOnGarbageRejected) {
  std::string error;
  EXPECT_FALSE(fs_.Write("/damon/monitor_on", "maybe", &error));
  EXPECT_NE(error.find("expected 'on' or 'off'"), std::string::npos);
  EXPECT_FALSE(dbgfs_.monitoring());
}

// --- checkpoint text (src/lifecycle) --------------------------------------

/// A minimal valid checkpoint to mutate: one target, one region.
lifecycle::Checkpoint TinyCheckpoint() {
  lifecycle::Checkpoint cp;
  cp.at = 1000;
  cp.sched.primed = true;
  cp.sched.rng_state = {1, 2, 3, 4};
  cp.sched.target_layout_gens = {1};
  lifecycle::CheckpointTarget target;
  damon::Region region;
  region.start = 1 * GiB;
  region.end = 1 * GiB + 2 * MiB;
  region.sampling_addr = 1 * GiB;
  target.regions.push_back(region);
  cp.targets.push_back(target);
  return cp;
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size() - 1;
    lines.push_back(text.substr(pos, eol - pos));
    pos = eol + 1;
  }
  return lines;
}

std::string JoinLines(const std::vector<std::string>& lines) {
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

TEST(MalformedCheckpointTest, EmptyInputRejectedAtLineOne) {
  lifecycle::CheckpointError error;
  EXPECT_FALSE(lifecycle::ParseCheckpoint("", &error).has_value());
  EXPECT_EQ(error.line_number, 1);
  EXPECT_NE(error.message.find("empty checkpoint"), std::string::npos);
}

TEST(MalformedCheckpointTest, WrongMagicRejectedAtLineOne) {
  lifecycle::CheckpointError error;
  EXPECT_FALSE(lifecycle::ParseCheckpoint("nope v1\n", &error).has_value());
  EXPECT_EQ(error.line_number, 1);
  EXPECT_NE(error.message.find("not a checkpoint"), std::string::npos);
}

TEST(MalformedCheckpointTest, VersionSkewRejectedAtLineOne) {
  std::vector<std::string> lines =
      SplitLines(SerializeCheckpoint(TinyCheckpoint()));
  lines[0] = "daos-checkpoint v2";
  lifecycle::CheckpointError error;
  EXPECT_FALSE(
      lifecycle::ParseCheckpoint(JoinLines(lines), &error).has_value());
  EXPECT_EQ(error.line_number, 1);
  EXPECT_NE(error.message.find("unsupported checkpoint version v2"),
            std::string::npos)
      << error.message;
}

TEST(MalformedCheckpointTest, EveryTruncationRejectedWithAccurateLine) {
  const std::vector<std::string> lines =
      SplitLines(SerializeCheckpoint(TinyCheckpoint()));
  ASSERT_GT(lines.size(), 5u);
  // No prefix of a valid checkpoint is a valid checkpoint, and the error
  // always points at (or before) the first missing line.
  for (std::size_t keep = 0; keep < lines.size(); ++keep) {
    const std::vector<std::string> prefix(lines.begin(),
                                          lines.begin() + keep);
    lifecycle::CheckpointError error;
    EXPECT_FALSE(
        lifecycle::ParseCheckpoint(JoinLines(prefix), &error).has_value())
        << "prefix of " << keep << " lines parsed";
    EXPECT_GE(error.line_number, 1) << "keep=" << keep;
    EXPECT_LE(error.line_number, static_cast<int>(keep) + 1)
        << "keep=" << keep;
    EXPECT_FALSE(error.message.empty());
  }
}

TEST(MalformedCheckpointTest, MissingEndRecordNamedExactly) {
  std::vector<std::string> lines =
      SplitLines(SerializeCheckpoint(TinyCheckpoint()));
  ASSERT_EQ(lines.back(), "end");
  lines.pop_back();
  lifecycle::CheckpointError error;
  EXPECT_FALSE(
      lifecycle::ParseCheckpoint(JoinLines(lines), &error).has_value());
  EXPECT_EQ(error.line_number, static_cast<int>(lines.size()) + 1);
  EXPECT_NE(error.message.find("unexpected end of checkpoint"),
            std::string::npos)
      << error.message;
}

TEST(MalformedCheckpointTest, GarbageFieldRejectedAtItsLine) {
  std::vector<std::string> lines =
      SplitLines(SerializeCheckpoint(TinyCheckpoint()));
  int region_line = 0;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (lines[i].rfind("region ", 0) == 0) {
      lines[i] = lines[i].substr(0, lines[i].rfind(' ')) + " xyz";
      region_line = static_cast<int>(i) + 1;
      break;
    }
  }
  ASSERT_GT(region_line, 0);
  lifecycle::CheckpointError error;
  EXPECT_FALSE(
      lifecycle::ParseCheckpoint(JoinLines(lines), &error).has_value());
  EXPECT_EQ(error.line_number, region_line);
  EXPECT_NE(error.message.find("bad unsigned value 'xyz'"),
            std::string::npos)
      << error.message;
}

TEST(MalformedCheckpointTest, TrailingDataAfterEndRejected) {
  const std::string text =
      SerializeCheckpoint(TinyCheckpoint()) + "bonus record\n";
  lifecycle::CheckpointError error;
  EXPECT_FALSE(lifecycle::ParseCheckpoint(text, &error).has_value());
  EXPECT_EQ(error.line_number,
            static_cast<int>(SplitLines(text).size()));
  EXPECT_NE(error.message.find("trailing data"), std::string::npos);
}

TEST(MalformedCheckpointTest, AllZeroRngRejected) {
  lifecycle::Checkpoint cp = TinyCheckpoint();
  cp.sched.rng_state = {0, 0, 0, 0};
  lifecycle::CheckpointError error;
  EXPECT_FALSE(
      lifecycle::ParseCheckpoint(SerializeCheckpoint(cp), &error).has_value());
  EXPECT_NE(error.message.find("all-zero"), std::string::npos);
  // "rng" is the fifth record of the format.
  EXPECT_EQ(error.line_number, 5);
}

TEST(MalformedCheckpointTest, OverflowingNumberRejected) {
  std::vector<std::string> lines =
      SplitLines(SerializeCheckpoint(TinyCheckpoint()));
  lines[1] = "at 99999999999999999999999999";
  lifecycle::CheckpointError error;
  EXPECT_FALSE(
      lifecycle::ParseCheckpoint(JoinLines(lines), &error).has_value());
  EXPECT_EQ(error.line_number, 2);
  EXPECT_NE(error.message.find("bad unsigned value"), std::string::npos);
}

// --- commit bundles (src/lifecycle) ---------------------------------------

TEST(MalformedCommitBundleTest, UnknownDirectiveLineAccurate) {
  lifecycle::KdamondSupervisor supervisor;
  lifecycle::CommitBundle bundle;
  std::string error;
  EXPECT_FALSE(supervisor.ParseCommitBundle(
      "attrs 5000 100000 1000000 10 1000\nfrobnicate x\n", &bundle, &error));
  EXPECT_NE(error.find("line 2: unknown directive 'frobnicate'"),
            std::string::npos)
      << error;
}

TEST(MalformedCommitBundleTest, BadSchemeLineReported) {
  lifecycle::KdamondSupervisor supervisor;
  lifecycle::CommitBundle bundle;
  std::string error;
  EXPECT_FALSE(supervisor.ParseCommitBundle(
      "scheme min max min min min max explode\n", &bundle, &error));
  EXPECT_NE(error.find("line 1"), std::string::npos) << error;
}

TEST(MalformedCommitBundleTest, EmptyBundleRejected) {
  lifecycle::KdamondSupervisor supervisor;
  lifecycle::CommitBundle bundle;
  std::string error;
  EXPECT_FALSE(
      supervisor.ParseCommitBundle("# nothing here\n", &bundle, &error));
  EXPECT_NE(error.find("empty commit bundle"), std::string::npos) << error;
}

TEST(MalformedCommitBundleTest, DuplicateAttrsRejected) {
  lifecycle::KdamondSupervisor supervisor;
  lifecycle::CommitBundle bundle;
  std::string error;
  EXPECT_FALSE(supervisor.ParseCommitBundle(
      "attrs 5000 100000 1000000 10 1000\n"
      "attrs 5000 100000 1000000 10 1000\n",
      &bundle, &error));
  EXPECT_NE(error.find("line 2: duplicate attrs"), std::string::npos)
      << error;
}

TEST(MalformedCommitBundleTest, AttrsFieldCountEnforced) {
  lifecycle::KdamondSupervisor supervisor;
  lifecycle::CommitBundle bundle;
  std::string error;
  EXPECT_FALSE(
      supervisor.ParseCommitBundle("attrs 5000 100000\n", &bundle, &error));
  EXPECT_NE(error.find("attrs expects"), std::string::npos) << error;
}

// --- daos-trace binary format (src/trace) ----------------------------------
//
// Hostile traces must be rejected all-or-nothing with errors that name the
// failing chunk and byte offset (header problems carry line numbers), and
// must never be able to request absurd allocations.

std::string U32Le(std::uint32_t v) {
  std::string out;
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 24) & 0xff));
  return out;
}

std::string Framed(const std::string& payload, std::uint32_t records) {
  return U32Le(static_cast<std::uint32_t>(payload.size())) + U32Le(records) +
         U32Le(trace::Crc32(payload)) + payload;
}

trace::Trace TinyTrace() {
  trace::Trace t;
  t.events = {
      {0, trace::TraceOp::kMap, false, 0x10000, 64, "heap"},
      {5000, trace::TraceOp::kTouchPage, true, 0x10003, 1, ""},
  };
  return t;
}

TEST(MalformedTraceTest, BadMagicIsLineOne) {
  trace::TraceError error;
  EXPECT_FALSE(trace::ParseTrace("daos-trace v2\nbody\n", &error).has_value());
  EXPECT_EQ(error.line_number, 1);
  EXPECT_NE(error.message.find("bad magic"), std::string::npos);
}

TEST(MalformedTraceTest, BadHeaderValueIsLineAccurate) {
  std::string text = SerializeTrace(TinyTrace());
  const std::size_t at = text.find("page_shift 12");
  ASSERT_NE(at, std::string::npos);
  text.replace(at, 13, "page_shift 33");  // out of the sane [10, 20] range
  trace::TraceError error;
  EXPECT_FALSE(trace::ParseTrace(text, &error).has_value());
  EXPECT_EQ(error.line_number, 3);  // magic, name, page_shift
  EXPECT_NE(error.message.find("page_shift"), std::string::npos);
}

TEST(MalformedTraceTest, MissingRequiredHeaderKeyRejected) {
  std::string text = SerializeTrace(TinyTrace());
  const std::size_t at = text.find("events 2\n");
  ASSERT_NE(at, std::string::npos);
  text.erase(at, 9);
  trace::TraceError error;
  EXPECT_FALSE(trace::ParseTrace(text, &error).has_value());
  EXPECT_NE(error.message.find("header missing a required key"),
            std::string::npos);
}

TEST(MalformedTraceTest, TruncatedChunkFrameRejected) {
  const std::string text = SerializeTrace(TinyTrace());
  const std::size_t body = text.find("body\n");
  ASSERT_NE(body, std::string::npos);
  trace::TraceError error;
  EXPECT_FALSE(
      trace::ParseTrace(text.substr(0, body + 5 + 5), &error).has_value());
  EXPECT_NE(error.message.find("chunk 0: truncated chunk frame"),
            std::string::npos);
  EXPECT_EQ(error.offset, body + 5);
}

TEST(MalformedTraceTest, TruncatedChunkPayloadRejected) {
  std::string text = SerializeTrace(TinyTrace());
  text.pop_back();
  trace::TraceError error;
  EXPECT_FALSE(trace::ParseTrace(text, &error).has_value());
  EXPECT_NE(error.message.find("chunk 0: truncated chunk payload"),
            std::string::npos);
  EXPECT_GT(error.offset, 0u);
  EXPECT_EQ(error.line_number, 0);
}

TEST(MalformedTraceTest, CrcMismatchAttributedToChunk) {
  std::string text = SerializeTrace(TinyTrace());
  text.back() = static_cast<char>(text.back() ^ 0x40);  // flip a payload bit
  trace::TraceError error;
  EXPECT_FALSE(trace::ParseTrace(text, &error).has_value());
  EXPECT_NE(error.message.find("chunk 0: crc mismatch"), std::string::npos);
}

TEST(MalformedTraceTest, BadVarintOffsetAccurate) {
  const std::string header = SerializeHeader(trace::TraceMeta{}, 1, 1);
  // op byte then a varint whose continuation bit never drops.
  const std::string text =
      header + Framed(std::string("\x02") + std::string(10, '\xff'), 1);
  trace::TraceError error;
  EXPECT_FALSE(trace::ParseTrace(text, &error).has_value());
  EXPECT_NE(error.message.find("chunk 0: bad varint"), std::string::npos);
  EXPECT_EQ(error.offset, header.size() + 12);  // the record's first byte
}

TEST(MalformedTraceTest, BadOpByteRejected) {
  const std::string text =
      SerializeHeader(trace::TraceMeta{}, 1, 1) + Framed("\x09", 1);
  trace::TraceError error;
  EXPECT_FALSE(trace::ParseTrace(text, &error).has_value());
  EXPECT_NE(error.message.find("chunk 0: bad op byte"), std::string::npos);
}

TEST(MalformedTraceTest, NegativePageRejected) {
  // touch, dt=0, page delta zigzag(-5): the cursor would go below page 0.
  std::string payload("\x02", 1);
  trace::AppendVarint(payload, 0);
  trace::AppendVarint(payload, trace::ZigZag(-5));
  const std::string text =
      SerializeHeader(trace::TraceMeta{}, 1, 1) + Framed(payload, 1);
  trace::TraceError error;
  EXPECT_FALSE(trace::ParseTrace(text, &error).has_value());
  EXPECT_NE(error.message.find("page number out of range"), std::string::npos);
}

TEST(MalformedTraceTest, ZeroPageCountRejected) {
  // map, dt=0, page 0, pages=0: an empty mapping is garbage.
  std::string payload("\x00", 1);
  trace::AppendVarint(payload, 0);
  trace::AppendVarint(payload, trace::ZigZag(0));
  trace::AppendVarint(payload, 0);
  const std::string text =
      SerializeHeader(trace::TraceMeta{}, 1, 1) + Framed(payload, 1);
  trace::TraceError error;
  EXPECT_FALSE(trace::ParseTrace(text, &error).has_value());
  EXPECT_NE(error.message.find("page count out of range"), std::string::npos);
}

TEST(MalformedTraceTest, TimestampBackwardsAcrossChunks) {
  // Chunk-local deltas are non-negative by construction; the cross-chunk
  // monotonicity is the parser's to enforce. Chunk 0 ends at t=100, chunk
  // 1 opens at t=50.
  std::string first("\x02", 1);
  trace::AppendVarint(first, 100);
  trace::AppendVarint(first, trace::ZigZag(0));
  std::string second("\x02", 1);
  trace::AppendVarint(second, 50);
  trace::AppendVarint(second, trace::ZigZag(0));
  const std::string text = SerializeHeader(trace::TraceMeta{}, 2, 2) +
                           Framed(first, 1) + Framed(second, 1);
  trace::TraceError error;
  EXPECT_FALSE(trace::ParseTrace(text, &error).has_value());
  EXPECT_NE(error.message.find("chunk 1: timestamp went backwards"),
            std::string::npos);
}

TEST(MalformedTraceTest, TrailingBytesAfterFinalChunkRejected) {
  const std::string text = SerializeTrace(TinyTrace()) + "x";
  trace::TraceError error;
  EXPECT_FALSE(trace::ParseTrace(text, &error).has_value());
  EXPECT_NE(error.message.find("trailing bytes after final chunk"),
            std::string::npos);
}

TEST(MalformedTraceTest, EventCountMismatchWithHeaderRejected) {
  std::string payload("\x02", 1);
  trace::AppendVarint(payload, 0);
  trace::AppendVarint(payload, trace::ZigZag(0));
  const std::string text =
      SerializeHeader(trace::TraceMeta{}, 3, 1) + Framed(payload, 1);
  trace::TraceError error;
  EXPECT_FALSE(trace::ParseTrace(text, &error).has_value());
  EXPECT_NE(error.message.find("event count mismatch"), std::string::npos);
}

TEST(MalformedTraceTest, OversizedChunkPayloadRejected) {
  // A frame claiming a 128 MiB payload must be rejected before any
  // allocation or scan — the declared size itself is the offense.
  const std::string text = SerializeHeader(trace::TraceMeta{}, 1, 1) +
                           U32Le(1u << 27) + U32Le(1) + U32Le(0);
  trace::TraceError error;
  EXPECT_FALSE(trace::ParseTrace(text, &error).has_value());
  EXPECT_NE(error.message.find("payload size too large"), std::string::npos);
}

// --- trace text ingestion (src/trace/ingest) --------------------------------

TEST(MalformedIngestTest, LackeyBadHexLineAccurate) {
  trace::IngestError error;
  EXPECT_FALSE(trace::IngestText("== banner ==\n L zzzz,4\n", "x",
                                 trace::IngestOptions{}, &error)
                   .has_value());
  EXPECT_EQ(error.line_number, 2);
  EXPECT_NE(error.message.find("bad hex address"), std::string::npos);
}

TEST(MalformedIngestTest, LackeyMissingSizeRejected) {
  trace::IngestError error;
  EXPECT_FALSE(
      trace::IngestLackey(" L 1000\n", "x", trace::IngestOptions{}, &error)
          .has_value());
  EXPECT_EQ(error.line_number, 1);
  EXPECT_NE(error.message.find("missing \",size\""), std::string::npos);
}

TEST(MalformedIngestTest, LackeyUnknownOpCharRejected) {
  trace::IngestError error;
  EXPECT_FALSE(trace::IngestLackey(" L 1000,4\n X 2000,4\n", "x",
                                   trace::IngestOptions{}, &error)
                   .has_value());
  EXPECT_EQ(error.line_number, 2);
  EXPECT_NE(error.message.find("unknown op"), std::string::npos);
}

TEST(MalformedIngestTest, LackeyGiantAccessRejected) {
  trace::IngestError error;
  EXPECT_FALSE(trace::IngestLackey(" L 1000,2000000000\n", "x",
                                   trace::IngestOptions{}, &error)
                   .has_value());
  EXPECT_NE(error.message.find("bad access size"), std::string::npos);
}

TEST(MalformedIngestTest, CsvTimeBackwardsLineAccurate) {
  trace::IngestError error;
  EXPECT_FALSE(trace::IngestText("time_us,op,addr,size\n"
                                 "5000,r,0x1000,4\n"
                                 "0,r,0x1000,4\n",
                                 "x", trace::IngestOptions{}, &error)
                   .has_value());
  EXPECT_EQ(error.line_number, 3);
  EXPECT_NE(error.message.find("time_us went backwards"), std::string::npos);
}

TEST(MalformedIngestTest, CsvUnknownOpRejected) {
  trace::IngestError error;
  EXPECT_FALSE(trace::IngestText("0,frobnicate,0x1000,4\n", "x",
                                 trace::IngestOptions{}, &error)
                   .has_value());
  EXPECT_EQ(error.line_number, 1);
  EXPECT_NE(error.message.find("unknown op \"frobnicate\""),
            std::string::npos);
}

TEST(MalformedIngestTest, CsvWrongFieldCountRejected) {
  trace::IngestError error;
  EXPECT_FALSE(
      trace::IngestCsv("0,r,0x1000\n", "x", trace::IngestOptions{}, &error)
          .has_value());
  EXPECT_NE(error.message.find("expected 4 fields"), std::string::npos);
}

TEST(MalformedIngestTest, CsvGiantMapRejected) {
  trace::IngestError error;
  EXPECT_FALSE(trace::IngestText("0,map,0x1000,999999999999999\n", "x",
                                 trace::IngestOptions{}, &error)
                   .has_value());
  EXPECT_NE(error.message.find("bad map size"), std::string::npos);
}

TEST(MalformedIngestTest, EmptyInputRejected) {
  trace::IngestError error;
  EXPECT_FALSE(trace::IngestLackey("== banner only ==\n", "x",
                                   trace::IngestOptions{}, &error)
                   .has_value());
  EXPECT_NE(error.message.find("no data accesses"), std::string::npos);
  EXPECT_FALSE(trace::IngestText("what is this\n", "x",
                                 trace::IngestOptions{}, &error)
                   .has_value());
  EXPECT_NE(error.message.find("unrecognized trace format"),
            std::string::npos);
}

// --- fault plane env -------------------------------------------------------

// Saves and restores DAOS_FAULTS / DAOS_FAULT_SEED around a test, so CI
// legs that run this binary with an armed env plane keep it for the tests
// that follow.
class MalformedFaultEnvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Save("DAOS_FAULTS");
    Save("DAOS_FAULT_SEED");
  }
  void TearDown() override {
    for (const auto& [name, value] : saved_) {
      if (value.has_value()) {
        setenv(name.c_str(), value->c_str(), 1);
      } else {
        unsetenv(name.c_str());
      }
    }
  }

 private:
  void Save(const char* name) {
    const char* value = std::getenv(name);
    saved_.emplace_back(name, value == nullptr
                                  ? std::nullopt
                                  : std::optional<std::string>(value));
  }
  std::vector<std::pair<std::string, std::optional<std::string>>> saved_;
};

// A wrong DAOS_FAULT_SEED is a *different* fault schedule, not a degraded
// one — silently defaulting would replay something other than the repro
// line named. FromEnv must reject the whole plane instead.
TEST_F(MalformedFaultEnvTest, NonNumericSeedRejectsPlane) {
  setenv("DAOS_FAULTS", "swap.write_error p=0.5", 1);
  setenv("DAOS_FAULT_SEED", "banana", 1);
  EXPECT_EQ(fault::FaultPlane::FromEnv(), nullptr);
}

TEST_F(MalformedFaultEnvTest, OverflowingSeedRejectsPlane) {
  setenv("DAOS_FAULTS", "swap.write_error p=0.5", 1);
  setenv("DAOS_FAULT_SEED", "99999999999999999999999", 1);  // > u64
  EXPECT_EQ(fault::FaultPlane::FromEnv(), nullptr);
  setenv("DAOS_FAULT_SEED", "-7", 1);
  EXPECT_EQ(fault::FaultPlane::FromEnv(), nullptr);
}

TEST_F(MalformedFaultEnvTest, ValidAndEmptySeedsStillArm) {
  setenv("DAOS_FAULTS", "swap.write_error p=0.5", 1);
  setenv("DAOS_FAULT_SEED", "12345", 1);
  auto plane = fault::FaultPlane::FromEnv();
  ASSERT_NE(plane, nullptr);
  EXPECT_EQ(plane->seed(), 12345u);
  setenv("DAOS_FAULT_SEED", "", 1);  // empty keeps the default seed
  EXPECT_NE(fault::FaultPlane::FromEnv(), nullptr);
}

// --- chaos campaign grammar ------------------------------------------------

TEST(MalformedCampaignTest, RejectsBadDirectivesWithLineNumbers) {
  const auto reject = [](std::string_view text, std::string_view fragment) {
    chaos::Campaign campaign;
    campaign.scenario = "keep-me";
    std::string error;
    EXPECT_FALSE(chaos::ParseCampaign(text, &campaign, &error)) << text;
    EXPECT_NE(error.find(fragment), std::string::npos)
        << text << " -> " << error;
    EXPECT_EQ(campaign.scenario, "keep-me") << "reject must not half-apply";
    EXPECT_TRUE(campaign.entries.empty());
  };
  reject("seed banana", "line 1");
  reject("seed 1 2", "seed <u64>");
  reject("scenario", "scenario <name>");
  reject("swap.write_error", "<point> <trigger>");
  reject("swap.write_error frob=1", "unknown trigger");
  reject("swap.write_error p=1.5", "bad probability");
  reject("swap.write_error p=nan", "bad probability");
  reject("swap.write_error every=0", "bad ordinal");
  reject("swap.write_error once=0", "bad one-shot ordinal");
  reject("swap.write_error p=0.1 from=weird", "bad window start");
  reject("swap.write_error p=0.1 until=0us", "bad window end");
  reject("ok.point p=0.1\nswap.write_error p=0.1 until=1s from=2s",
         "line 2: empty window");
  reject("swap.write_error p=0.1 from=1s until=1s", "empty window");
}

TEST(MalformedCampaignTest, EntryWithoutTriggerRejected) {
  chaos::Campaign campaign;
  std::string error;
  EXPECT_FALSE(
      chaos::ParseCampaign("swap.write_error from=1s until=2s", &campaign,
                           &error));
  EXPECT_NE(error.find("no trigger"), std::string::npos) << error;
}

}  // namespace
}  // namespace daos
