#include "damon/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>

namespace daos::damon {
namespace {

std::vector<Snapshot> SampleSnapshots() {
  Snapshot a;
  a.at = 100000;
  a.target_index = 0;
  a.regions = {SnapshotRegion{0x1000, 0x5000, 3, 7},
               SnapshotRegion{0x5000, 0x9000, 0, 42}};
  Snapshot b;
  b.at = 200000;
  b.target_index = 1;
  b.regions = {SnapshotRegion{0x10000, 0x20000, 20, 0}};
  return {a, b};
}

TEST(TraceTest, SerializeFormat) {
  const std::string text = SerializeTrace(SampleSnapshots());
  EXPECT_NE(text.find("T 100000 0 2\n"), std::string::npos);
  EXPECT_NE(text.find("R 4096 20480 3 7\n"), std::string::npos);
  EXPECT_NE(text.find("T 200000 1 1\n"), std::string::npos);
}

TEST(TraceTest, RoundTrip) {
  const auto original = SampleSnapshots();
  const auto parsed = ParseTrace(SerializeTrace(original));
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ((*parsed)[i].at, original[i].at);
    EXPECT_EQ((*parsed)[i].target_index, original[i].target_index);
    ASSERT_EQ((*parsed)[i].regions.size(), original[i].regions.size());
    for (std::size_t j = 0; j < original[i].regions.size(); ++j) {
      EXPECT_EQ((*parsed)[i].regions[j].start, original[i].regions[j].start);
      EXPECT_EQ((*parsed)[i].regions[j].end, original[i].regions[j].end);
      EXPECT_EQ((*parsed)[i].regions[j].nr_accesses,
                original[i].regions[j].nr_accesses);
      EXPECT_EQ((*parsed)[i].regions[j].age, original[i].regions[j].age);
    }
  }
}

TEST(TraceTest, EmptyTrace) {
  const auto parsed = ParseTrace("");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->empty());
  EXPECT_EQ(SerializeTrace({}), "");
}

TEST(TraceTest, RejectsMalformedLines) {
  EXPECT_FALSE(ParseTrace("X 1 2 3\n").has_value());
  EXPECT_FALSE(ParseTrace("R 0 4096 1 0\n").has_value());   // R before T
  EXPECT_FALSE(ParseTrace("T 1 0 2\nR 0 4096 1 0\n").has_value());  // short
  EXPECT_FALSE(ParseTrace("T 1 0 1\nR 4096 0 1 0\n").has_value());  // end<start
  EXPECT_FALSE(ParseTrace("T one 0 1\n").has_value());
}

TEST(TraceTest, RejectsExtraRegions) {
  EXPECT_FALSE(
      ParseTrace("T 1 0 1\nR 0 4096 1 0\nR 4096 8192 1 0\n").has_value());
}

TEST(TraceTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/daos_trace_test.rec";
  ASSERT_TRUE(WriteTraceFile(path, SampleSnapshots()));
  const auto parsed = ReadTraceFile(path);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->size(), 2u);
  std::remove(path.c_str());
}

TEST(TraceTest, MissingFile) {
  EXPECT_FALSE(ReadTraceFile("/nonexistent/daos.rec").has_value());
}

}  // namespace
}  // namespace daos::damon
