#include "damon/primitives.hpp"

#include <gtest/gtest.h>

#include "sim/address_space.hpp"
#include "sim/machine.hpp"

namespace daos::damon {
namespace {

sim::MachineSpec Spec() { return sim::MachineSpec{"t", 4, 3.0, 4 * GiB}; }

TEST(VaddrPrimitivesTest, ThreeRegionsExcludeBigGaps) {
  sim::Machine machine(Spec(), sim::SwapConfig::Zram());
  sim::AddressSpace space(1, &machine, 3.0);
  // heap ... huge gap ... mmap ... huge gap ... stack (a realistic layout).
  space.Map(0x10000000, 64 * MiB, "heap");
  space.Map(0x7f0000000000, 16 * MiB, "mmap");
  space.Map(0x7ffff0000000, 8 * MiB, "stack");

  VaddrPrimitives prim(&space);
  const auto ranges = prim.TargetRanges();
  ASSERT_EQ(ranges.size(), 3u);
  EXPECT_EQ(ranges[0].start, 0x10000000u);
  EXPECT_EQ(ranges[0].end, 0x10000000u + 64 * MiB);
  EXPECT_EQ(ranges[1].start, 0x7f0000000000u);
  EXPECT_EQ(ranges[2].end, 0x7ffff0000000u + 8 * MiB);
}

TEST(VaddrPrimitivesTest, SmallGapsAreSpanned) {
  sim::Machine machine(Spec(), sim::SwapConfig::Zram());
  sim::AddressSpace space(1, &machine, 3.0);
  // Four VMAs: three closely spaced + one far away. Only the two biggest
  // gaps separate ranges, so the close ones stay in one span.
  space.Map(0x10000000, 4 * MiB, "a");
  space.Map(0x10000000 + 5 * MiB, 4 * MiB, "b");
  space.Map(0x10000000 + 10 * MiB, 4 * MiB, "c");
  space.Map(0x7f0000000000, 4 * MiB, "far");

  VaddrPrimitives prim(&space);
  const auto ranges = prim.TargetRanges();
  // Two cut points -> at most 3 ranges; the far VMA must be separate.
  ASSERT_LE(ranges.size(), 3u);
  EXPECT_EQ(ranges.back().start, 0x7f0000000000u);
}

TEST(VaddrPrimitivesTest, EmptySpace) {
  sim::Machine machine(Spec(), sim::SwapConfig::Zram());
  sim::AddressSpace space(1, &machine, 3.0);
  VaddrPrimitives prim(&space);
  EXPECT_TRUE(prim.TargetRanges().empty());
}

TEST(VaddrPrimitivesTest, MkOldIsYoungRoundTrip) {
  sim::Machine machine(Spec(), sim::SwapConfig::Zram());
  sim::AddressSpace space(1, &machine, 3.0);
  space.Map(0x10000000, 4 * MiB, "heap");
  space.TouchPage(0x10000000, false, 0);
  VaddrPrimitives prim(&space);
  EXPECT_TRUE(prim.IsYoung(0x10000000));
  prim.MkOld(0x10000000, 1000);
  EXPECT_FALSE(prim.IsYoung(0x10000000));
}

TEST(VaddrPrimitivesTest, LayoutGenerationTracksMaps) {
  sim::Machine machine(Spec(), sim::SwapConfig::Zram());
  sim::AddressSpace space(1, &machine, 3.0);
  VaddrPrimitives prim(&space);
  const auto g0 = prim.LayoutGeneration();
  space.Map(0x10000000, MiB, "heap");
  EXPECT_NE(prim.LayoutGeneration(), g0);
}

TEST(VaddrPrimitivesTest, ApplyActionDispatch) {
  sim::Machine machine(Spec(), sim::SwapConfig::Zram());
  sim::AddressSpace space(1, &machine, 3.0);
  space.Map(0x10000000, 16 * kPageSize, "heap");
  space.TouchRange(0x10000000, 0x10000000 + 16 * kPageSize, true, 0);
  VaddrPrimitives prim(&space);

  EXPECT_EQ(prim.ApplyAction(DamosAction::kStat, 0x10000000,
                             0x10000000 + 16 * kPageSize, 0),
            16 * kPageSize);
  EXPECT_EQ(prim.ApplyAction(DamosAction::kCold, 0x10000000,
                             0x10000000 + 16 * kPageSize, 0),
            16 * kPageSize);
  EXPECT_EQ(prim.ApplyAction(DamosAction::kPageout, 0x10000000,
                             0x10000000 + 16 * kPageSize, 0),
            16 * kPageSize);
  EXPECT_EQ(space.resident_pages(), 0u);
  EXPECT_EQ(prim.ApplyAction(DamosAction::kWillneed, 0x10000000,
                             0x10000000 + 16 * kPageSize, 0),
            16 * kPageSize);
  EXPECT_EQ(space.resident_pages(), 16u);
}

TEST(DamosActionNameTest, AllNamed) {
  EXPECT_EQ(DamosActionName(DamosAction::kPageout), "pageout");
  EXPECT_EQ(DamosActionName(DamosAction::kHugepage), "hugepage");
  EXPECT_EQ(DamosActionName(DamosAction::kNohugepage), "nohugepage");
  EXPECT_EQ(DamosActionName(DamosAction::kWillneed), "willneed");
  EXPECT_EQ(DamosActionName(DamosAction::kCold), "cold");
  EXPECT_EQ(DamosActionName(DamosAction::kStat), "stat");
}

class PaddrPrimitivesTest : public ::testing::Test {
 protected:
  PaddrPrimitivesTest() : machine_(Spec(), sim::SwapConfig::Zram()) {}
  sim::Machine machine_;
};

TEST_F(PaddrPrimitivesTest, PhysicalSpaceConcatenatesAllSpaces) {
  sim::AddressSpace a(1, &machine_, 3.0);
  sim::AddressSpace b(2, &machine_, 3.0);
  a.Map(0x10000000, 8 * MiB, "a-heap");
  b.Map(0x20000000, 8 * MiB, "b-heap");
  PaddrPrimitives prim(&machine_);
  const auto ranges = prim.TargetRanges();
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0].start, 0u);
  EXPECT_EQ(ranges[0].end, 16 * MiB);
}

TEST_F(PaddrPrimitivesTest, RmapTranslationRoundTrip) {
  sim::AddressSpace a(1, &machine_, 3.0);
  sim::AddressSpace b(2, &machine_, 3.0);
  a.Map(0x10000000, 8 * MiB, "a-heap");
  b.Map(0x20000000, 8 * MiB, "b-heap");
  // Touch only a page in the second space; its physical address is offset
  // by the first space's size.
  b.TouchPage(0x20000000 + 5 * kPageSize, false, 0);
  PaddrPrimitives prim(&machine_);
  const Addr phys = 8 * MiB + 5 * kPageSize;
  EXPECT_TRUE(prim.IsYoung(phys));
  prim.MkOld(phys, 1000);
  EXPECT_FALSE(prim.IsYoung(phys));
  EXPECT_FALSE(b.IsYoung(0x20000000 + 5 * kPageSize));
}

TEST_F(PaddrPrimitivesTest, LayoutGenerationChangesOnAnySpace) {
  sim::AddressSpace a(1, &machine_, 3.0);
  a.Map(0x10000000, MiB, "heap");
  PaddrPrimitives prim(&machine_);
  const auto g0 = prim.LayoutGeneration();
  sim::AddressSpace b(2, &machine_, 3.0);
  b.Map(0x20000000, MiB, "heap");
  EXPECT_NE(prim.LayoutGeneration(), g0);
}

TEST_F(PaddrPrimitivesTest, ActionSpansSpaces) {
  sim::AddressSpace a(1, &machine_, 3.0);
  sim::AddressSpace b(2, &machine_, 3.0);
  a.Map(0x10000000, 4 * kPageSize, "a-heap");
  b.Map(0x20000000, 4 * kPageSize, "b-heap");
  a.TouchRange(0x10000000, 0x10000000 + 4 * kPageSize, true, 0);
  b.TouchRange(0x20000000, 0x20000000 + 4 * kPageSize, true, 0);
  PaddrPrimitives prim(&machine_);
  // Page out the whole "physical" range: both spaces drained.
  const std::uint64_t evicted =
      prim.ApplyAction(DamosAction::kPageout, 0, 8 * kPageSize, 0);
  EXPECT_EQ(evicted, 8 * kPageSize);
  EXPECT_EQ(a.resident_pages(), 0u);
  EXPECT_EQ(b.resident_pages(), 0u);
}

TEST_F(PaddrPrimitivesTest, OutOfRangeIsQuietlyIgnored) {
  sim::AddressSpace a(1, &machine_, 3.0);
  a.Map(0x10000000, kPageSize, "heap");
  PaddrPrimitives prim(&machine_);
  EXPECT_FALSE(prim.IsYoung(1 * GiB));
  prim.MkOld(1 * GiB, 0);  // must not crash
}

TEST_F(PaddrPrimitivesTest, PaddrChecksCostMoreThanVaddr) {
  sim::AddressSpace a(1, &machine_, 3.0);
  VaddrPrimitives va(&a, machine_.costs().monitor_check_us);
  PaddrPrimitives pa(&machine_, machine_.costs().monitor_check_paddr_us);
  EXPECT_GT(pa.CheckCostUs(), va.CheckCostUs());
}

}  // namespace
}  // namespace daos::damon
