#include "autotune/tuner.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace daos::autotune {
namespace {

/// Synthetic trial runner: runtime and RSS respond to min_age with a known
/// optimum, plus deterministic noise — a stand-in for a real workload.
class SyntheticWorkload {
 public:
  explicit SyntheticWorkload(double best_age_s, std::uint64_t seed = 7)
      : best_age_s_(best_age_s), rng_(seed) {}

  TrialMeasurement Run(const damos::Scheme* scheme) {
    if (scheme == nullptr) return TrialMeasurement{100.0, 1000.0};
    const double age_s =
        static_cast<double>(scheme->bounds().min_age) / kUsPerSec;
    // Memory saving decays with min_age; slowdown explodes below the
    // workload's re-reference period (best_age_s).
    const double saving = 0.6 * std::exp(-age_s / 30.0);
    const double slowdown =
        age_s < best_age_s_ ? 0.4 * (best_age_s_ - age_s) / best_age_s_ : 0.01;
    const double noise = (rng_.NextDouble() - 0.5) * 0.02;
    return TrialMeasurement{100.0 * (1.0 + slowdown + noise),
                            1000.0 * (1.0 - saving)};
  }

  int trials = 0;

 private:
  double best_age_s_;
  Rng rng_;
};

TunerConfig Config(std::size_t samples = 10) {
  TunerConfig cfg;
  cfg.nr_samples = samples;
  cfg.min_age_lo = 0;
  cfg.min_age_hi = 60 * kUsPerSec;
  cfg.seed = 42;
  return cfg;
}

TEST(TunerTest, FindsKnownOptimumRegion) {
  SyntheticWorkload wl(/*best_age_s=*/15.0);
  AutoTuner tuner(Config(10));
  const TunerResult r = tuner.Tune(
      damos::Scheme::Prcl(), [&](const damos::Scheme* s) { return wl.Run(s); });
  // Optimum sits just above the re-reference period; accept a window.
  const double best_s = static_cast<double>(r.best_min_age) / kUsPerSec;
  EXPECT_GT(best_s, 8.0);
  EXPECT_LT(best_s, 40.0);
  EXPECT_GT(r.predicted_score, 0.0);
}

TEST(TunerTest, SampleBudgetRespected) {
  SyntheticWorkload wl(10.0);
  int trials = 0;
  AutoTuner tuner(Config(10));
  tuner.Tune(damos::Scheme::Prcl(), [&](const damos::Scheme* s) {
    if (s != nullptr) ++trials;
    return wl.Run(s);
  });
  EXPECT_EQ(trials, 10);
}

TEST(TunerTest, SixtyFortySplit) {
  SyntheticWorkload wl(10.0);
  AutoTuner tuner(Config(10));
  const TunerResult r = tuner.Tune(
      damos::Scheme::Prcl(), [&](const damos::Scheme* s) { return wl.Run(s); });
  int exploration = 0, exploitation = 0;
  for (const TunerSample& s : r.samples)
    (s.exploration ? exploration : exploitation) += 1;
  EXPECT_EQ(exploration, 6);
  EXPECT_EQ(exploitation, 4);
}

TEST(TunerTest, LocalSamplesNearBestGlobal) {
  SyntheticWorkload wl(20.0);
  AutoTuner tuner(Config(10));
  const TunerResult r = tuner.Tune(
      damos::Scheme::Prcl(), [&](const damos::Scheme* s) { return wl.Run(s); });
  // Best exploration sample:
  double best_score = -1e9;
  SimTimeUs best_age = 0;
  for (const TunerSample& s : r.samples) {
    if (s.exploration && s.score > best_score) {
      best_score = s.score;
      best_age = s.min_age;
    }
  }
  // Every exploitation sample within the documented radius (1/10 of space).
  const SimTimeUs radius = 6 * kUsPerSec;
  for (const TunerSample& s : r.samples) {
    if (s.exploration) continue;
    const SimTimeUs d =
        s.min_age > best_age ? s.min_age - best_age : best_age - s.min_age;
    EXPECT_LE(d, radius + kUsPerSec);
  }
}

TEST(TunerTest, FitDegreeIsSamplesOverThree) {
  SyntheticWorkload wl(10.0);
  AutoTuner tuner(Config(12));
  const TunerResult r = tuner.Tune(
      damos::Scheme::Prcl(), [&](const damos::Scheme* s) { return wl.Run(s); });
  ASSERT_TRUE(r.estimate.Valid());
  EXPECT_EQ(r.estimate.Degree(), 4u);  // 12 / 3
}

TEST(TunerTest, TunedSchemeKeepsActionAndShape) {
  SyntheticWorkload wl(10.0);
  AutoTuner tuner(Config(10));
  const damos::Scheme base = damos::Scheme::Prcl(5 * kUsPerSec);
  const TunerResult r = tuner.Tune(
      base, [&](const damos::Scheme* s) { return wl.Run(s); });
  EXPECT_EQ(r.tuned.action(), damon::DamosAction::kPageout);
  EXPECT_EQ(r.tuned.bounds().min_size, base.bounds().min_size);
  EXPECT_EQ(r.tuned.bounds().min_age, r.best_min_age);
}

TEST(TunerTest, BaselineMeasuredOnce) {
  SyntheticWorkload wl(10.0);
  int baseline_runs = 0;
  AutoTuner tuner(Config(10));
  const TunerResult r =
      tuner.Tune(damos::Scheme::Prcl(), [&](const damos::Scheme* s) {
        if (s == nullptr) ++baseline_runs;
        return wl.Run(s);
      });
  EXPECT_EQ(baseline_runs, 1);
  EXPECT_DOUBLE_EQ(r.baseline.runtime_s, 100.0);
}

TEST(TunerTest, DeterministicForSameSeed) {
  SyntheticWorkload wl1(10.0), wl2(10.0);
  AutoTuner t1(Config(10)), t2(Config(10));
  const TunerResult r1 = t1.Tune(
      damos::Scheme::Prcl(), [&](const damos::Scheme* s) { return wl1.Run(s); });
  const TunerResult r2 = t2.Tune(
      damos::Scheme::Prcl(), [&](const damos::Scheme* s) { return wl2.Run(s); });
  EXPECT_EQ(r1.best_min_age, r2.best_min_age);
}

TEST(TunerTest, TimeBudgetDerivesSamples) {
  TunerConfig cfg;
  cfg.nr_samples = 0;
  cfg.time_limit = 100 * kUsPerSec;
  cfg.unit_work_time = 10 * kUsPerSec;
  EXPECT_EQ(cfg.EffectiveSamples(), 10u);
}

TEST(TunerTest, EffectiveSamplesZeroGuard) {
  TunerConfig cfg;
  cfg.nr_samples = 0;
  cfg.unit_work_time = 0;
  EXPECT_EQ(cfg.EffectiveSamples(), 0u);
}

// Property: across different optima positions, the tuner's pick never
// lands in the catastrophic-slowdown zone far below the optimum.
class TunerOptimumTest : public ::testing::TestWithParam<double> {};

TEST_P(TunerOptimumTest, AvoidsDeepSlowdownRegion) {
  const double best = GetParam();
  SyntheticWorkload wl(best, /*seed=*/static_cast<std::uint64_t>(best * 100));
  AutoTuner tuner(Config(12));
  const TunerResult r = tuner.Tune(
      damos::Scheme::Prcl(), [&](const damos::Scheme* s) { return wl.Run(s); });
  const double picked_s = static_cast<double>(r.best_min_age) / kUsPerSec;
  EXPECT_GT(picked_s, best * 0.4);
}

INSTANTIATE_TEST_SUITE_P(Optima, TunerOptimumTest,
                         ::testing::Values(8.0, 15.0, 25.0, 40.0));

// The quota knob tunes the scheme's governor budget and leaves the
// matching bounds alone.
TEST(TunerTest, QuotaSizeKnobTunesPolicyNotBounds) {
  TunerConfig cfg;
  cfg.nr_samples = 10;
  cfg.knob = TuneKnob::kQuotaSz;
  cfg.quota_sz_lo = 1 * MiB;
  cfg.quota_sz_hi = 256 * MiB;
  cfg.seed = 42;
  Rng rng(7);
  // Memory saving saturates with quota; slowdown explodes past ~64M/s.
  auto run = [&](const damos::Scheme* s) {
    if (s == nullptr) return TrialMeasurement{100.0, 1000.0};
    const double q_mib =
        static_cast<double>(s->policy().quota.sz_bytes) / MiB;
    const double saving = 0.5 * (1.0 - std::exp(-q_mib / 32.0));
    const double slowdown = q_mib > 64.0 ? 0.3 * (q_mib - 64.0) / 64.0 : 0.0;
    const double noise = (rng.NextDouble() - 0.5) * 0.02;
    return TrialMeasurement{100.0 * (1.0 + slowdown + noise),
                            1000.0 * (1.0 - saving)};
  };

  const damos::Scheme seed = damos::Scheme::Prcl(2 * kUsPerSec);
  AutoTuner tuner(cfg);
  const TunerResult r = tuner.Tune(seed, run);
  // best_min_age carries the winning knob value — here, quota bytes.
  EXPECT_GE(r.best_min_age, cfg.quota_sz_lo);
  EXPECT_LE(r.best_min_age, cfg.quota_sz_hi);
  EXPECT_EQ(r.tuned.policy().quota.sz_bytes, r.best_min_age);
  EXPECT_EQ(r.tuned.bounds().min_age, seed.bounds().min_age);
}

}  // namespace
}  // namespace daos::autotune
