// End-to-end scenarios asserting the paper's headline behaviours on real
// (but time-scaled) workload profiles — the repo's kselftest equivalent.
#include <gtest/gtest.h>

#include "analysis/experiment.hpp"
#include "analysis/report.hpp"
#include "analysis/runner.hpp"
#include "autotune/tuner.hpp"
#include "damon/recorder.hpp"
#include "workload/generator.hpp"
#include "workload/profile.hpp"
#include "workload/serverless.hpp"

#include "damon/monitor.hpp"
#include "damos/engine.hpp"
#include "sim/system.hpp"

namespace daos {
namespace {

/// Shrinks a real profile so an end-to-end run stays test-sized: runtime
/// and warm periods scaled by `time_scale`, data by `size_scale`.
workload::WorkloadProfile Shrink(const workload::WorkloadProfile& p,
                                 double time_scale, double size_scale) {
  workload::WorkloadProfile out = p;
  out.runtime_s *= time_scale;
  out.data_bytes = AlignUp(
      static_cast<std::uint64_t>(static_cast<double>(p.data_bytes) *
                                 size_scale),
      kHugePageSize * 8);
  out.noise = 0.0;
  for (workload::GroupSpec& g : out.groups) {
    if (g.period_s > 0) g.period_s *= time_scale;
  }
  return out;
}

analysis::ExperimentOptions TestOptions() {
  analysis::ExperimentOptions opt;
  opt.max_time = 300 * kUsPerSec;
  opt.apply_runtime_noise = false;
  return opt;
}

TEST(PaperShape, FreqminePrclBestCase) {
  // §4.2: "parsec3/freqmine achieves 91 % memory saving with only a 0.9 %
  // slowdown" — our shape target: >70 % saving, <3 % slowdown.
  const workload::WorkloadProfile p =
      Shrink(*workload::FindProfile("parsec3/freqmine"), 0.15, 0.5);
  const auto base =
      analysis::RunWorkload(p, analysis::Config::kBaseline, TestOptions());
  const auto schemes = analysis::PrclSchemes(3 * kUsPerSec);
  const auto prcl = analysis::RunWorkload(p, analysis::Config::kSchemes,
                                          TestOptions(), &schemes);
  const auto n = analysis::Normalize(prcl, base);
  EXPECT_GT(n.memory_efficiency, 2.0);  // > 50 % saving
  EXPECT_GT(n.performance, 0.97);
}

TEST(PaperShape, OceanNcpThpBestCase) {
  // §4.2: THP gives ocean_ncp its biggest speedup and biggest bloat.
  const workload::WorkloadProfile p =
      Shrink(*workload::FindProfile("splash2x/ocean_ncp"), 0.15, 0.04);
  const auto base =
      analysis::RunWorkload(p, analysis::Config::kBaseline, TestOptions());
  const auto thp =
      analysis::RunWorkload(p, analysis::Config::kThp, TestOptions());
  const auto n = analysis::Normalize(thp, base);
  EXPECT_GT(n.performance, 1.05);
  EXPECT_LT(n.memory_efficiency, 0.85);
}

TEST(PaperShape, EthpRemovesBloatKeepsSomeGain) {
  // §4.2: ethp "reduces 80 % of memory overhead while preserving 46 % of
  // the performance improvement" (best case) — shape: most bloat gone,
  // some gain kept.
  const workload::WorkloadProfile p =
      Shrink(*workload::FindProfile("splash2x/ocean_ncp"), 0.15, 0.04);
  // The three configs are independent: submit them as one grid.
  std::vector<analysis::RunSpec> specs(3);
  specs[0].config = analysis::Config::kBaseline;
  specs[1].config = analysis::Config::kThp;
  specs[2].config = analysis::Config::kEthp;
  for (analysis::RunSpec& spec : specs) {
    spec.profile = p;
    spec.options = TestOptions();
  }
  const auto results = analysis::ParallelRunner().Run(specs);
  const auto& base = results[0];
  const auto nthp = analysis::Normalize(results[1], base);
  const auto nethp = analysis::Normalize(results[2], base);

  const double thp_bloat = 1.0 / nthp.memory_efficiency - 1.0;
  const double ethp_bloat =
      std::max(0.0, 1.0 / nethp.memory_efficiency - 1.0);
  EXPECT_LT(ethp_bloat, 0.5 * thp_bloat + 0.01);  // removes most bloat
  EXPECT_GT(nethp.performance, 1.0);              // keeps some speedup
}

TEST(PaperShape, DensePrclWorstCaseSlowsDown) {
  // §4.2: prcl hurts dense, sweep-heavy workloads (ocean_ncp: -78 %).
  const workload::WorkloadProfile p =
      Shrink(*workload::FindProfile("splash2x/radix"), 0.3, 0.05);
  const auto base =
      analysis::RunWorkload(p, analysis::Config::kBaseline, TestOptions());
  const auto schemes = analysis::PrclSchemes(1 * kUsPerSec);  // aggressive
  const auto prcl = analysis::RunWorkload(p, analysis::Config::kSchemes,
                                          TestOptions(), &schemes);
  const auto n = analysis::Normalize(prcl, base);
  EXPECT_LT(n.performance, 0.97);  // visible slowdown from refaults
}

TEST(PaperShape, MonitorAccuracyShowsHotRegion) {
  // Conclusion-2: the monitor identifies hot regions. Record canneal's
  // pattern and check the hot head dominates the snapshots.
  const workload::WorkloadProfile p =
      Shrink(*workload::FindProfile("parsec3/canneal"), 0.1, 0.2);
  damon::Recorder recorder;
  const auto rec = analysis::RunWorkload(p, analysis::Config::kRec,
                                         TestOptions(), nullptr, &recorder);
  ASSERT_TRUE(rec.finished);
  ASSERT_GT(recorder.snapshots().size(), 5u);

  // Accumulate access weight in the hot head (group 0) vs the cold tail.
  const Addr heap = workload::SyntheticSource::kHeapBase;
  const Addr hot_end = heap + p.data_bytes / 16;  // canneal hot = 6 %
  double hot_w = 0, cold_w = 0;
  for (const damon::Snapshot& snap : recorder.snapshots()) {
    for (const damon::SnapshotRegion& r : snap.regions) {
      if (r.end <= heap || r.start >= heap + p.data_bytes) continue;
      const double density =
          static_cast<double>(r.nr_accesses) /
          (static_cast<double>(r.end - r.start) / MiB + 1.0);
      if (r.start < hot_end) {
        hot_w += density;
      } else {
        cold_w += density;
      }
    }
  }
  EXPECT_GT(hot_w, cold_w);
}

TEST(PaperShape, AutotuneBeatsBadManualScheme) {
  // §4.3: auto-tuning removes most of the manual scheme's slowdown while
  // keeping a sizeable share of its savings. Use a workload whose warm set
  // re-references every 2 s over slow file swap, so over-aggressive
  // reclamation (min_age=0) thrashes badly.
  workload::WorkloadProfile p;
  p.name = "test/thrasher";
  p.suite = "test";
  p.data_bytes = 192 * MiB;
  p.runtime_s = 20;
  p.noise = 0.0;
  p.mem_boundness = 1.0;
  p.groups = {
      workload::GroupSpec{0.15, 0.0, 1.0, 0.3},   // hot
      workload::GroupSpec{0.25, 2.0, 1.0, 0.3},   // warm sweep, 2 s period
      workload::GroupSpec{0.60, -1.0, 0.9, 0.2},  // cold: the real win
  };
  p.zipf_touches_per_s = 8000;
  analysis::ExperimentOptions opt = TestOptions();
  // Slow file swap: aggressively reclaiming the warm sweep violates the
  // 10 % SLA, while cold-only reclaim at high min_age is nearly free — the
  // sweet spot the tuner must find.
  opt.swap = sim::SwapConfig::File();

  auto trial = [&](const damos::Scheme* s) {
    if (s == nullptr) {
      const auto r = analysis::RunWorkload(p, analysis::Config::kBaseline, opt);
      return autotune::TrialMeasurement{r.runtime_s, r.avg_rss_bytes};
    }
    const std::vector<damos::Scheme> schemes{*s};
    const auto r =
        analysis::RunWorkload(p, analysis::Config::kSchemes, opt, &schemes);
    return autotune::TrialMeasurement{r.runtime_s, r.avg_rss_bytes};
  };

  autotune::TunerConfig cfg;
  cfg.nr_samples = 10;
  cfg.min_age_lo = 0;
  cfg.min_age_hi = 24 * kUsPerSec;  // spans past the (scaled) runtime, as Fig. 4
  cfg.seed = 5;
  autotune::AutoTuner tuner(cfg);
  const autotune::TunerResult result =
      tuner.Tune(damos::Scheme::Prcl(), trial);

  // Compare an over-aggressive manual scheme (min_age=0) with the tuned
  // one, under the paper's own SLA-aware score function (Listing 2).
  damos::Scheme manual = damos::Scheme::Prcl(0);
  const autotune::TrialMeasurement baseline = trial(nullptr);
  const autotune::TrialMeasurement manual_m = trial(&manual);
  const autotune::TrialMeasurement tuned_m = trial(&result.tuned);
  autotune::DefaultScoreFunction manual_fn, tuned_fn;
  const double manual_score = manual_fn.Score(manual_m, baseline);
  const double tuned_score = tuned_fn.Score(tuned_m, baseline);
  EXPECT_GT(tuned_score, manual_score);
  // The manual scheme breaks the SLA; the tuned one must not (by much).
  EXPECT_GT(manual_m.runtime_s / baseline.runtime_s, 1.10);
  EXPECT_LT(tuned_m.runtime_s / baseline.runtime_s, 1.15);
}

TEST(PaperShape, ServerlessTrimFigure9) {
  // §4.4: pageout(30 s) trims the serverless fleet's RSS by ~80-90 %.
  // Scaled: 2 servers x 128 MiB, pageout(2 s), zram.
  workload::ServerlessConfig config;
  config.nr_processes = 2;
  config.rss_per_process = 128 * MiB;
  config.working_set_frac = 0.10;
  config.cold_touch_period_s = 1000;  // effectively never

  sim::System system(sim::MachineSpec{"prod", 16, 3.0, 8 * GiB},
                     sim::SwapConfig::Zram(2 * GiB), sim::ThpMode::kNever,
                     5 * kUsPerMs);
  std::vector<sim::Process*> servers;
  for (int i = 0; i < config.nr_processes; ++i) {
    servers.push_back(&system.AddProcess(
        workload::ServerParams(config, i),
        std::make_unique<workload::ServerSource>(config, 11 + i)));
  }
  damon::DamonContext ctx(damon::MonitoringAttrs::PaperDefaults());
  for (sim::Process* server : servers) {
    ctx.AddTarget(std::make_unique<damon::VaddrPrimitives>(&server->space()));
  }
  damos::SchemesEngine engine({damos::Scheme::Prcl(2 * kUsPerSec)});
  engine.Attach(ctx);
  system.RegisterDaemon(
      [&ctx](SimTimeUs now, SimTimeUs q) { return ctx.Step(now, q); });

  system.Run(20 * kUsPerSec);
  for (sim::Process* server : servers) {
    const double trimmed =
        1.0 - static_cast<double>(server->ReadRssBytes()) /
                  static_cast<double>(config.rss_per_process);
    EXPECT_GT(trimmed, 0.6);   // most of the bloat is gone
    EXPECT_LT(trimmed, 0.95);  // the working set survives
  }
}

TEST(PaperShape, MonitorOverheadIndependentOfTargetSize) {
  // Conclusion-3: rec (one process) vs prec (whole guest) show similar
  // overhead because the region cap bounds the work.
  const workload::WorkloadProfile p =
      Shrink(*workload::FindProfile("parsec3/blackscholes"), 0.15, 0.25);
  std::vector<analysis::RunSpec> specs(2);
  specs[0].config = analysis::Config::kRec;
  specs[1].config = analysis::Config::kPrec;
  for (analysis::RunSpec& spec : specs) {
    spec.profile = p;
    spec.options = TestOptions();
  }
  const auto results = analysis::ParallelRunner().Run(specs);
  const auto& rec = results[0];
  const auto& prec = results[1];
  EXPECT_LT(prec.monitor_cpu_fraction, 3.0 * rec.monitor_cpu_fraction + 0.01);
}

}  // namespace
}  // namespace daos
