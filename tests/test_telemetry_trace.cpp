#include "telemetry/trace_buffer.hpp"

#include <gtest/gtest.h>

#include "telemetry/export.hpp"

namespace daos::telemetry {
namespace {

TraceEvent Ev(SimTimeUs t, std::uint64_t a0 = 0) {
  return TraceEvent{t, EventKind::kReclaim, 0, a0, 0, 0};
}

TEST(TraceBufferTest, FillsInOrder) {
  TraceBuffer buf(4);
  EXPECT_EQ(buf.size(), 0u);
  buf.Push(Ev(1));
  buf.Push(Ev(2));
  EXPECT_EQ(buf.size(), 2u);
  EXPECT_EQ(buf.dropped(), 0u);
  const auto events = buf.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].time, 1u);
  EXPECT_EQ(events[1].time, 2u);
}

TEST(TraceBufferTest, WraparoundKeepsNewestAndCountsDrops) {
  TraceBuffer buf(4);
  for (SimTimeUs t = 1; t <= 10; ++t) buf.Push(Ev(t));
  EXPECT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf.pushed(), 10u);
  EXPECT_EQ(buf.dropped(), 6u);
  const auto events = buf.Events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first, and it is the newest 4 that survive.
  EXPECT_EQ(events[0].time, 7u);
  EXPECT_EQ(events[3].time, 10u);
}

TEST(TraceBufferTest, OverflowStressStaysBounded) {
  // The acceptance contract: overflowing by orders of magnitude leaves the
  // buffer at exactly `capacity` events with every overwrite counted —
  // memory use never grows past construction.
  constexpr std::size_t kCap = 1024;
  TraceBuffer buf(kCap);
  constexpr std::uint64_t kPushes = 100'000;
  for (std::uint64_t i = 0; i < kPushes; ++i) buf.Push(Ev(i, i));
  EXPECT_EQ(buf.capacity(), kCap);
  EXPECT_EQ(buf.size(), kCap);
  EXPECT_EQ(buf.pushed(), kPushes);
  EXPECT_GT(buf.dropped(), 0u);
  EXPECT_EQ(buf.dropped(), kPushes - kCap);
  const auto events = buf.Events();
  ASSERT_EQ(events.size(), kCap);
  EXPECT_EQ(events.front().time, kPushes - kCap);
  EXPECT_EQ(events.back().time, kPushes - 1);
}

TEST(TraceBufferTest, DrainEmptiesButKeepsLossCounters) {
  TraceBuffer buf(2);
  buf.Push(Ev(1));
  buf.Push(Ev(2));
  buf.Push(Ev(3));
  const auto drained = buf.Drain();
  ASSERT_EQ(drained.size(), 2u);
  EXPECT_EQ(drained[0].time, 2u);
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_TRUE(buf.Events().empty());
  EXPECT_EQ(buf.pushed(), 3u);
  EXPECT_EQ(buf.dropped(), 1u);
  // Refilling after a drain works and drops nothing until full again.
  buf.Push(Ev(4));
  EXPECT_EQ(buf.size(), 1u);
  EXPECT_EQ(buf.dropped(), 1u);
  EXPECT_EQ(buf.Events().front().time, 4u);
}

TEST(TraceBufferTest, ZeroCapacityClampsToOne) {
  TraceBuffer buf(0);
  EXPECT_EQ(buf.capacity(), 1u);
  buf.Push(Ev(1));
  buf.Push(Ev(2));
  EXPECT_EQ(buf.size(), 1u);
  EXPECT_EQ(buf.Events().front().time, 2u);
  EXPECT_EQ(buf.dropped(), 1u);
}

TEST(TraceBufferTest, PushIsPodCopyNoAllocation) {
  // The hot-path contract: events are trivially copyable and Push is
  // noexcept — it cannot allocate or format.
  static_assert(std::is_trivially_copyable_v<TraceEvent>);
  TraceBuffer buf(8);
  static_assert(noexcept(buf.Push(TraceEvent{})));
}

TEST(TraceJsonlTest, GoldenOutput) {
  TraceBuffer buf(4);
  buf.Push(TraceEvent{1000, EventKind::kSchemeApply, 2, 4096, 8192, 4096});
  buf.Push(TraceEvent{2000, EventKind::kSwapOut, 0, 64, 64, 0});
  EXPECT_EQ(ToJsonl(buf),
            "{\"t\":1000,\"kind\":\"scheme_apply\",\"id\":2,"
            "\"args\":[4096,8192,4096]}\n"
            "{\"t\":2000,\"kind\":\"swap_out\",\"id\":0,"
            "\"args\":[64,64,0]}\n"
            "{\"pushed\":2,\"dropped\":0}\n");
}

TEST(TraceJsonlTest, ReportsDrops) {
  TraceBuffer buf(1);
  buf.Push(Ev(1));
  buf.Push(Ev(2));
  const std::string out = ToJsonl(buf);
  EXPECT_NE(out.find("{\"pushed\":2,\"dropped\":1}\n"), std::string::npos);
}

}  // namespace
}  // namespace daos::telemetry
