#include "autotune/polyfit.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace daos::autotune {
namespace {

TEST(PolyfitTest, ExactLinearFit) {
  const std::vector<double> xs{0, 1, 2, 3, 4};
  const std::vector<double> ys{1, 3, 5, 7, 9};  // y = 2x + 1
  const Polynomial p = FitPolynomial(xs, ys, 1);
  ASSERT_TRUE(p.Valid());
  for (double x : xs) EXPECT_NEAR(p.Evaluate(x), 2 * x + 1, 1e-9);
  EXPECT_NEAR(p.Evaluate(10), 21, 1e-6);
}

TEST(PolyfitTest, ExactQuadraticFit) {
  std::vector<double> xs, ys;
  for (int i = 0; i <= 10; ++i) {
    const double x = i;
    xs.push_back(x);
    ys.push_back(3 * x * x - 2 * x + 5);
  }
  const Polynomial p = FitPolynomial(xs, ys, 2);
  ASSERT_TRUE(p.Valid());
  EXPECT_NEAR(p.Evaluate(4.5), 3 * 4.5 * 4.5 - 2 * 4.5 + 5, 1e-6);
}

TEST(PolyfitTest, DegreeClampedToPoints) {
  const std::vector<double> xs{0, 1, 2};
  const std::vector<double> ys{0, 1, 4};
  const Polynomial p = FitPolynomial(xs, ys, 10);
  ASSERT_TRUE(p.Valid());
  EXPECT_LE(p.Degree(), 2u);
}

TEST(PolyfitTest, TooFewPointsInvalid) {
  const std::vector<double> xs{1};
  const std::vector<double> ys{1};
  EXPECT_FALSE(FitPolynomial(xs, ys, 1).Valid());
  EXPECT_FALSE(FitPolynomial({}, {}, 1).Valid());
}

TEST(PolyfitTest, NoisyFitRecoversTrend) {
  Rng rng(99);
  std::vector<double> xs, ys;
  for (int i = 0; i <= 60; ++i) {
    const double x = i;
    const double noise = (rng.NextDouble() - 0.5) * 2.0;
    xs.push_back(x);
    ys.push_back(-0.02 * (x - 20) * (x - 20) + 25 + noise);  // peak at 20
  }
  const Polynomial p = FitPolynomial(xs, ys, 3);
  ASSERT_TRUE(p.Valid());
  const auto peaks = FindPeaks(p, 0, 60);
  ASSERT_FALSE(peaks.empty());
  EXPECT_NEAR(peaks.front().x, 20.0, 4.0);
  EXPECT_NEAR(peaks.front().value, 25.0, 3.0);
}

TEST(PolyfitTest, DerivativeMatchesAnalytic) {
  std::vector<double> xs, ys;
  for (int i = 0; i <= 10; ++i) {
    xs.push_back(i);
    ys.push_back(i * i);  // y' = 2x
  }
  const Polynomial p = FitPolynomial(xs, ys, 2);
  EXPECT_NEAR(p.Derivative(3.0), 6.0, 1e-6);
  EXPECT_NEAR(p.Derivative(0.0), 0.0, 1e-6);
}

TEST(FindPeaksTest, MonotonicPicksEndpoint) {
  const std::vector<double> xs{0, 1, 2, 3};
  const std::vector<double> ys{0, 1, 2, 3};
  const Polynomial p = FitPolynomial(xs, ys, 1);
  const auto peaks = FindPeaks(p, 0, 3);
  ASSERT_FALSE(peaks.empty());
  EXPECT_DOUBLE_EQ(peaks.front().x, 3.0);
}

TEST(FindPeaksTest, DecreasingPicksLeftEndpoint) {
  const std::vector<double> xs{0, 1, 2, 3};
  const std::vector<double> ys{9, 6, 3, 0};
  const Polynomial p = FitPolynomial(xs, ys, 1);
  const auto peaks = FindPeaks(p, 0, 3);
  ASSERT_FALSE(peaks.empty());
  EXPECT_DOUBLE_EQ(peaks.front().x, 0.0);
}

TEST(FindPeaksTest, SortedByValue) {
  // Quartic with two local maxima of different heights.
  std::vector<double> xs, ys;
  for (int i = 0; i <= 100; ++i) {
    const double x = i / 10.0;
    xs.push_back(x);
    // Peaks near x=2 (height ~4) and x=8 (height ~2).
    ys.push_back(4 * std::exp(-(x - 2) * (x - 2)) +
                 2 * std::exp(-(x - 8) * (x - 8)));
  }
  const Polynomial p = FitPolynomial(xs, ys, 8);
  const auto peaks = FindPeaks(p, 0, 10);
  ASSERT_GE(peaks.size(), 2u);
  for (std::size_t i = 1; i < peaks.size(); ++i)
    EXPECT_GE(peaks[i - 1].value, peaks[i].value);
  EXPECT_NEAR(peaks.front().x, 2.0, 1.0);
}

TEST(FindPeaksTest, InvalidPolynomialYieldsNothing) {
  EXPECT_TRUE(FindPeaks(Polynomial{}, 0, 10).empty());
}

TEST(FindPeaksTest, DegenerateIntervalYieldsNothing) {
  const std::vector<double> xs{0, 1, 2};
  const std::vector<double> ys{0, 1, 2};
  const Polynomial p = FitPolynomial(xs, ys, 1);
  EXPECT_TRUE(FindPeaks(p, 5, 5).empty());
}

// Property: fitting a polynomial of degree d to d+1 exact samples of a
// degree-d polynomial reproduces all samples.
class PolyfitExactTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PolyfitExactTest, InterpolatesExactSamples) {
  const std::size_t degree = GetParam();
  Rng rng(degree * 7 + 1);
  std::vector<double> coeffs(degree + 1);
  for (auto& c : coeffs) c = rng.NextDouble() * 4 - 2;
  auto eval = [&](double x) {
    double acc = 0;
    for (std::size_t i = coeffs.size(); i-- > 0;) acc = acc * x + coeffs[i];
    return acc;
  };
  std::vector<double> xs, ys;
  for (std::size_t i = 0; i <= degree + 4; ++i) {
    const double x = static_cast<double>(i);
    xs.push_back(x);
    ys.push_back(eval(x));
  }
  const Polynomial p = FitPolynomial(xs, ys, degree);
  ASSERT_TRUE(p.Valid());
  for (std::size_t i = 0; i < xs.size(); ++i)
    EXPECT_NEAR(p.Evaluate(xs[i]), ys[i], 1e-6 + std::fabs(ys[i]) * 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Degrees, PolyfitExactTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace daos::autotune
