// End-to-end checks that every layer publishes through the unified
// telemetry plane: the monitor mirror matches MonitorCounters, the schemes
// engine mirrors DAMOS stats, the System snapshot hook publishes sim
// gauges, the dbgfs file serves the exported view, and RunWorkload ships a
// snapshot whose cpu_fraction is the value fig7 consumes.
#include <gtest/gtest.h>

#include "analysis/experiment.hpp"
#include "damon/monitor.hpp"
#include "damon/primitives.hpp"
#include "damos/engine.hpp"
#include "dbgfs/pseudo_fs.hpp"
#include "dbgfs/telemetry_fs.hpp"
#include "sim/system.hpp"
#include "telemetry/export.hpp"
#include "workload/generator.hpp"
#include "workload/profile.hpp"

namespace daos {
namespace {

workload::WorkloadProfile SmallProfile() {
  workload::WorkloadProfile p;
  p.name = "test/telemetry";
  p.suite = "test";
  p.data_bytes = 64 * MiB;
  p.runtime_s = 20;
  p.noise = 0;
  p.groups = {workload::GroupSpec{0.25, 0.0, 1.0, 0.3},
              workload::GroupSpec{0.75, -1.0, 1.0, 0.2}};
  return p;
}

struct Stack {
  Stack()
      : system(sim::MachineSpec::I3Metal().GuestOf(), sim::SwapConfig::Zram(),
               sim::ThpMode::kNever, 5 * kUsPerMs),
        proc(system.AddProcess(workload::ToProcessParams(SmallProfile()),
                               workload::MakeSource(SmallProfile(), 7))),
        ctx(damon::MonitoringAttrs::PaperDefaults(), /*seed=*/5),
        trace(512) {
    ctx.AddTarget(std::make_unique<damon::VaddrPrimitives>(
        &proc.space(), system.machine().costs().monitor_check_us));
    engine.InstallFromText("min max min min min max stat\n");
    engine.Attach(ctx);
    ctx.BindTelemetry(registry, &trace);
    engine.BindTelemetry(registry, &trace);
    system.AttachTelemetry(&registry, &trace);
    system.RegisterDaemon(
        [this](SimTimeUs now, SimTimeUs q) { return ctx.Step(now, q); });
  }

  sim::System system;
  sim::Process& proc;
  damon::DamonContext ctx;
  damos::SchemesEngine engine;
  telemetry::MetricsRegistry registry;
  telemetry::TraceBuffer trace;
};

TEST(TelemetryWiringTest, MonitorCountersMirrorIntoRegistry) {
  Stack s;
  s.system.Run(30 * kUsPerSec);

  const damon::MonitorCounters& c = s.ctx.counters();
  ASSERT_GT(c.samples, 0u);
  ASSERT_GT(c.aggregations, 0u);
  const telemetry::MetricsSnapshot snap = s.registry.Snapshot();
  EXPECT_EQ(snap.Value("damon.ctx0.samples"),
            static_cast<double>(c.samples));
  EXPECT_EQ(snap.Value("damon.ctx0.aggregations"),
            static_cast<double>(c.aggregations));
  EXPECT_EQ(snap.Value("damon.ctx0.region_splits"),
            static_cast<double>(c.region_splits));
  EXPECT_EQ(snap.Value("damon.ctx0.region_merges"),
            static_cast<double>(c.region_merges));
  EXPECT_DOUBLE_EQ(snap.Value("damon.ctx0.cpu_us"), c.cpu_us);
  EXPECT_EQ(snap.Value("damon.ctx0.nr_regions"),
            static_cast<double>(s.ctx.TotalRegions()));
}

TEST(TelemetryWiringTest, LateBindCatchesUpExistingCounts) {
  Stack s;
  s.system.Run(10 * kUsPerSec);
  telemetry::MetricsRegistry late;
  s.ctx.BindTelemetry(late, nullptr, "damon.late");
  EXPECT_EQ(late.Snapshot().Value("damon.late.samples"),
            static_cast<double>(s.ctx.counters().samples));
}

TEST(TelemetryWiringTest, SchemesEngineMirrorsDamosStats) {
  Stack s;
  s.system.Run(30 * kUsPerSec);

  const damos::SchemeStats& st = s.engine.schemes().front().stats();
  ASSERT_GT(st.nr_tried, 0u);
  const telemetry::MetricsSnapshot snap = s.registry.Snapshot();
  EXPECT_EQ(snap.Value("damos.scheme0.nr_tried"),
            static_cast<double>(st.nr_tried));
  EXPECT_EQ(snap.Value("damos.scheme0.sz_tried"),
            static_cast<double>(st.sz_tried));
  EXPECT_EQ(snap.Value("damos.scheme0.nr_applied"),
            static_cast<double>(st.nr_applied));
  EXPECT_EQ(snap.Value("damos.scheme0.sz_applied"),
            static_cast<double>(st.sz_applied));
}

TEST(TelemetryWiringTest, TracepointsFlow) {
  Stack s;
  s.system.Run(30 * kUsPerSec);

  bool saw_sample = false, saw_aggregation = false;
  for (const telemetry::TraceEvent& e : s.trace.Events()) {
    saw_sample |= e.kind == telemetry::EventKind::kSample;
    saw_aggregation |= e.kind == telemetry::EventKind::kAggregation;
  }
  EXPECT_TRUE(saw_sample);
  EXPECT_TRUE(saw_aggregation);
  EXPECT_GT(s.trace.pushed(), 0u);
  EXPECT_LE(s.trace.size(), s.trace.capacity());
}

TEST(TelemetryWiringTest, SystemSnapshotPublishesSimGauges) {
  Stack s;
  s.system.Run(30 * kUsPerSec);
  const telemetry::MetricsSnapshot snap = s.registry.Snapshot();
  EXPECT_NE(snap.Find("sim.dram_used_bytes"), nullptr);
  EXPECT_NE(snap.Find("sim.processes.active"), nullptr);
  EXPECT_GT(snap.Value("sim.dram_used_bytes"), 0.0);
}

TEST(TelemetryWiringTest, DbgfsTelemetryFileServesExports) {
  Stack s;
  dbgfs::PseudoFs fs;
  dbgfs::TelemetryFs tfs(&fs, &s.registry, &s.trace);
  s.system.Run(20 * kUsPerSec);

  const auto metrics = fs.Read("/telemetry/metrics");
  ASSERT_TRUE(metrics.has_value());
  EXPECT_NE(metrics->find("damon_ctx0_samples"), std::string::npos);
  EXPECT_NE(metrics->find("damos_scheme0_nr_tried"), std::string::npos);

  const auto events = fs.Read("/telemetry/events");
  ASSERT_TRUE(events.has_value());
  EXPECT_NE(events->find("\"kind\":\"sample\""), std::string::npos);

  // Read-only, like the kernel's stat files.
  std::string error;
  EXPECT_FALSE(fs.Write("/telemetry/metrics", "x", &error));
}

TEST(TelemetryWiringTest, RunWorkloadShipsSnapshotWithCpuFraction) {
  workload::WorkloadProfile profile = SmallProfile();
  profile.data_bytes = 128 * MiB;
  analysis::ExperimentOptions opt;
  opt.max_time = 120 * kUsPerSec;
  opt.apply_runtime_noise = false;

  const analysis::ExperimentResult rec =
      analysis::RunWorkload(profile, analysis::Config::kRec, opt);
  EXPECT_GT(rec.telemetry.Value("damon.ctx0.cpu_fraction"), 0.0);
  EXPECT_DOUBLE_EQ(rec.telemetry.Value("damon.ctx0.cpu_fraction"),
                   rec.monitor_cpu_fraction);
  EXPECT_GT(rec.telemetry.Value("damon.ctx0.samples"), 0.0);

  const analysis::ExperimentResult base =
      analysis::RunWorkload(profile, analysis::Config::kBaseline, opt);
  EXPECT_FALSE(base.telemetry.empty());  // sim gauges even without monitoring
  EXPECT_DOUBLE_EQ(base.telemetry.Value("damon.ctx0.cpu_fraction", -1.0), -1.0);
}

}  // namespace
}  // namespace daos
