#include "sim/address_space.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "sim/machine.hpp"
#include "util/rng.hpp"

namespace daos::sim {
namespace {

MachineSpec SmallSpec() { return MachineSpec{"test", 4, 3.0, 1 * GiB}; }

class AddressSpaceTest : public ::testing::Test {
 protected:
  Machine machine_{SmallSpec(), SwapConfig::Zram(64 * MiB)};
  AddressSpace space_{1, &machine_, 3.0};
};

TEST_F(AddressSpaceTest, MapCreatesVma) {
  Vma* vma = space_.Map(0x10000, 64 * kPageSize, "heap");
  ASSERT_NE(vma, nullptr);
  EXPECT_EQ(vma->start(), 0x10000u);
  EXPECT_EQ(vma->size(), 64 * kPageSize);
  EXPECT_EQ(vma->page_count(), 64u);
  EXPECT_EQ(space_.mapped_bytes(), 64 * kPageSize);
}

TEST_F(AddressSpaceTest, MapRejectsInvalidAndOverlapping) {
  EXPECT_EQ(space_.Map(0x10000, 0, "empty"), nullptr);
  ASSERT_NE(space_.Map(0x10000, 4 * kPageSize, "a"), nullptr);
  // Overlapping the existing vma is refused and changes nothing.
  EXPECT_EQ(space_.Map(0x10000 + kPageSize, 4 * kPageSize, "b"), nullptr);
  EXPECT_EQ(space_.mapped_bytes(), 4 * kPageSize);
  EXPECT_EQ(space_.vmas().size(), 1u);
}

TEST_F(AddressSpaceTest, MapBumpsLayoutGeneration) {
  const auto g0 = space_.layout_generation();
  space_.Map(0x10000, kPageSize, "a");
  EXPECT_GT(space_.layout_generation(), g0);
}

TEST_F(AddressSpaceTest, FindVmaHitsAndMisses) {
  space_.Map(0x10000, 4 * kPageSize, "a");
  space_.Map(0x100000, 4 * kPageSize, "b");
  EXPECT_NE(space_.FindVma(0x10000), nullptr);
  EXPECT_NE(space_.FindVma(0x10000 + 3 * kPageSize), nullptr);
  EXPECT_EQ(space_.FindVma(0x10000 + 4 * kPageSize), nullptr);
  EXPECT_EQ(space_.FindVma(0x0), nullptr);
  EXPECT_EQ(space_.FindVma(0x100000)->name(), "b");
}

TEST_F(AddressSpaceTest, TouchFaultsInPage) {
  space_.Map(0x10000, 4 * kPageSize, "a");
  const TouchStats st = space_.TouchPage(0x10000, false, 0);
  EXPECT_EQ(st.minor_faults, 1u);
  EXPECT_EQ(st.major_faults, 0u);
  EXPECT_EQ(space_.resident_pages(), 1u);
  EXPECT_TRUE(space_.IsResident(0x10000));
  EXPECT_GT(st.stall_us, 0.0);
}

TEST_F(AddressSpaceTest, SecondTouchNoFault) {
  space_.Map(0x10000, 4 * kPageSize, "a");
  space_.TouchPage(0x10000, false, 0);
  const TouchStats st = space_.TouchPage(0x10000, false, 1000);
  EXPECT_EQ(st.minor_faults, 0u);
  EXPECT_DOUBLE_EQ(st.stall_us, 0.0);
}

TEST_F(AddressSpaceTest, TouchOutsideMappingIsNoop) {
  const TouchStats st = space_.TouchPage(0xdead000, false, 0);
  EXPECT_EQ(st.pages, 0u);
  EXPECT_EQ(space_.resident_pages(), 0u);
}

TEST_F(AddressSpaceTest, TouchChargesMachineFrames) {
  space_.Map(0x10000, 4 * kPageSize, "a");
  space_.TouchPage(0x10000, false, 0);
  space_.TouchPage(0x10000 + kPageSize, false, 0);
  EXPECT_EQ(machine_.used_frames(), 2u);
}

TEST_F(AddressSpaceTest, MkOldAndIsYoung) {
  space_.Map(0x10000, 4 * kPageSize, "a");
  space_.TouchPage(0x10000, false, 0);
  EXPECT_TRUE(space_.IsYoung(0x10000));
  space_.MkOld(0x10000, 1000);
  EXPECT_FALSE(space_.IsYoung(0x10000));
  space_.TouchPage(0x10000, false, 2000);
  EXPECT_TRUE(space_.IsYoung(0x10000));
}

TEST_F(AddressSpaceTest, RangeTouchVisibleThroughLog) {
  space_.Map(0x10000, 1024 * kPageSize, "a");
  // Populate, then clear one page's accessed bit.
  space_.TouchRange(0x10000, 0x10000 + 1024 * kPageSize, false, 0);
  const Addr probe = 0x10000 + 100 * kPageSize;
  space_.MkOld(probe, 1 * kUsPerSec);
  EXPECT_FALSE(space_.IsYoung(probe));
  // A later range sweep over the whole area must mark it young again even
  // though the fast path does not touch the page struct.
  space_.TouchRange(0x10000, 0x10000 + 1024 * kPageSize, false,
                    2 * kUsPerSec);
  EXPECT_TRUE(space_.IsYoung(probe));
}

TEST_F(AddressSpaceTest, RangeTouchBeforeMkOldNotYoung) {
  space_.Map(0x10000, 1024 * kPageSize, "a");
  space_.TouchRange(0x10000, 0x10000 + 1024 * kPageSize, false, 0);
  const Addr probe = 0x10000 + 5 * kPageSize;
  space_.MkOld(probe, 5 * kUsPerSec);  // cleared after the sweep
  EXPECT_FALSE(space_.IsYoung(probe));
}

TEST_F(AddressSpaceTest, PageOutRangeEvictsToSwap) {
  space_.Map(0x10000, 64 * kPageSize, "a");
  space_.TouchRange(0x10000, 0x10000 + 64 * kPageSize, true, 0);
  const std::uint64_t evicted =
      space_.PageOutRange(0x10000, 0x10000 + 64 * kPageSize, kUsPerSec);
  EXPECT_EQ(evicted, 64 * kPageSize);
  EXPECT_EQ(space_.resident_pages(), 0u);
  EXPECT_EQ(space_.swapped_pages(), 64u);
  EXPECT_EQ(machine_.swap().used_slots(), 64u);
  EXPECT_EQ(machine_.used_frames(), 0u);
}

TEST_F(AddressSpaceTest, SwappedTouchIsMajorFault) {
  space_.Map(0x10000, 4 * kPageSize, "a");
  space_.TouchPage(0x10000, true, 0);
  space_.PageOutRange(0x10000, 0x10000 + kPageSize, 0);
  const TouchStats st = space_.TouchPage(0x10000, false, kUsPerSec);
  EXPECT_EQ(st.major_faults, 1u);
  EXPECT_EQ(space_.major_faults(), 1u);
  EXPECT_GE(st.stall_us,
            static_cast<double>(machine_.swap().config().page_in_us));
  EXPECT_TRUE(space_.IsResident(0x10000));
  EXPECT_EQ(machine_.swap().used_slots(), 0u);
}

TEST_F(AddressSpaceTest, SwapInRangeBringsPagesBack) {
  space_.Map(0x10000, 16 * kPageSize, "a");
  space_.TouchRange(0x10000, 0x10000 + 16 * kPageSize, true, 0);
  space_.PageOutRange(0x10000, 0x10000 + 16 * kPageSize, 0);
  const std::uint64_t bytes =
      space_.SwapInRange(0x10000, 0x10000 + 16 * kPageSize, kUsPerSec);
  EXPECT_EQ(bytes, 16 * kPageSize);
  EXPECT_EQ(space_.resident_pages(), 16u);
  EXPECT_EQ(space_.swapped_pages(), 0u);
}

TEST_F(AddressSpaceTest, DeactivateMarksPages) {
  space_.Map(0x10000, 8 * kPageSize, "a");
  space_.TouchRange(0x10000, 0x10000 + 8 * kPageSize, false, 0);
  const std::uint64_t bytes =
      space_.DeactivateRange(0x10000, 0x10000 + 8 * kPageSize);
  EXPECT_EQ(bytes, 8 * kPageSize);
  EXPECT_TRUE(space_.FindVma(0x10000)->PageAt(0x10000).Deactivated());
  // A touch reactivates.
  space_.TouchPage(0x10000, false, kUsPerSec);
  EXPECT_FALSE(space_.FindVma(0x10000)->PageAt(0x10000).Deactivated());
}

TEST_F(AddressSpaceTest, UnmapReleasesEverything) {
  space_.Map(0x10000, 32 * kPageSize, "a");
  space_.TouchRange(0x10000, 0x10000 + 32 * kPageSize, true, 0);
  space_.PageOutRange(0x10000, 0x10000 + 8 * kPageSize, 0);
  space_.UnmapVma(0x10000);
  EXPECT_EQ(space_.mapped_bytes(), 0u);
  EXPECT_EQ(space_.resident_pages(), 0u);
  EXPECT_EQ(space_.swapped_pages(), 0u);
  EXPECT_EQ(machine_.used_frames(), 0u);
  EXPECT_EQ(machine_.swap().used_slots(), 0u);
}

TEST_F(AddressSpaceTest, DestructorReturnsFrames) {
  {
    AddressSpace other(2, &machine_, 2.0);
    other.Map(0x20000, 16 * kPageSize, "x");
    other.TouchRange(0x20000, 0x20000 + 16 * kPageSize, false, 0);
    EXPECT_EQ(machine_.used_frames(), 16u);
  }
  EXPECT_EQ(machine_.used_frames(), 0u);
}

TEST_F(AddressSpaceTest, PageOutWithoutSwapFreesNothingTouched) {
  Machine no_swap(SmallSpec(), SwapConfig::None());
  AddressSpace space(3, &no_swap, 3.0);
  space.Map(0x10000, 8 * kPageSize, "a");
  space.TouchRange(0x10000, 0x10000 + 8 * kPageSize, true, 0);
  const std::uint64_t evicted =
      space.PageOutRange(0x10000, 0x10000 + 8 * kPageSize, 0);
  EXPECT_EQ(evicted, 0u);
  EXPECT_EQ(space.resident_pages(), 8u);
  EXPECT_GT(no_swap.counters().failed_evictions, 0u);
}

TEST_F(AddressSpaceTest, VmaBlockSpanClamped) {
  // A VMA smaller than one huge block still has a valid (partial) block.
  Vma* vma = space_.Map(0x10000, 16 * kPageSize, "small");
  ASSERT_NE(vma, nullptr);
  ASSERT_GE(vma->block_count(), 1u);
  const auto [lo, hi] = vma->BlockPageSpan(0);
  EXPECT_EQ(hi - lo, 16u);
  EXPECT_FALSE(vma->BlockIsFull(0));
}

TEST_F(AddressSpaceTest, FullBlockDetected) {
  Vma* vma = space_.Map(2 * kHugePageSize, 2 * kHugePageSize, "aligned");
  ASSERT_NE(vma, nullptr);
  EXPECT_TRUE(vma->BlockIsFull(0));
  EXPECT_TRUE(vma->BlockIsFull(1));
}

TEST_F(AddressSpaceTest, DirtyBitOnWrite) {
  space_.Map(0x10000, 4 * kPageSize, "a");
  space_.TouchPage(0x10000, false, 0);
  EXPECT_FALSE(space_.FindVma(0x10000)->PageAt(0x10000).Dirty());
  space_.TouchPage(0x10000, true, 0);
  EXPECT_TRUE(space_.FindVma(0x10000)->PageAt(0x10000).Dirty());
}

TEST_F(AddressSpaceTest, LogGcKeepsRecentEntries) {
  space_.Map(0x10000, 1024 * kPageSize, "a");
  space_.TouchRange(0x10000, 0x10000 + 1024 * kPageSize, false, 0);
  Vma* vma = space_.FindVma(0x10000);
  // Sweep at t=20s, GC at t=25s with a 10s horizon keeps it.
  space_.TouchRange(0x10000, 0x10000 + 1024 * kPageSize, false,
                    20 * kUsPerSec);
  space_.MaintainLogs(25 * kUsPerSec);
  EXPECT_GE(vma->log_size(), 1u);
}

TEST_F(AddressSpaceTest, MaintainLogsReportsDroppedEntries) {
  space_.Map(0x10000, 1024 * kPageSize, "a");
  space_.TouchRange(0x10000, 0x10000 + 1024 * kPageSize, false, 0);
  Vma* vma = space_.FindVma(0x10000);
  ASSERT_GE(vma->log_size(), 1u);
  // Horizon is 10s: a GC at t=20s drops the t=0 entry and reports it.
  EXPECT_GE(space_.MaintainLogs(20 * kUsPerSec), 1u);
  EXPECT_EQ(vma->log_size(), 0u);
  EXPECT_EQ(space_.MaintainLogs(21 * kUsPerSec), 0u);
}

// FindVma resolves through the interval index (sorted start/end arrays
// rebuilt on Map/Unmap); these tests drive the rebuild edges — the same
// layout changes that used to invalidate the last-hit vmacache.

TEST_F(AddressSpaceTest, VmaIndexRebuiltByUnmap) {
  space_.Map(0x10000, 4 * kPageSize, "a");
  space_.TouchPage(0x10000, false, 0);  // resolves "a" through the index
  ASSERT_NE(space_.FindVma(0x10000), nullptr);
  space_.UnmapVma(0x10000);
  EXPECT_EQ(space_.FindVma(0x10000), nullptr);
  EXPECT_FALSE(space_.IsYoung(0x10000));
}

TEST_F(AddressSpaceTest, VmaIndexRebuiltByMapBetweenTouches) {
  space_.Map(0x100000, 4 * kPageSize, "b");
  space_.TouchPage(0x100000, false, 0);  // resolves "b" through the index
  // Mapping "a" below "b" shifts "b"'s position in the sorted arrays; a
  // stale index would now resolve to the wrong VMA.
  ASSERT_NE(space_.Map(0x10000, 4 * kPageSize, "a"), nullptr);
  const Vma* a = space_.FindVma(0x10000);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->name(), "a");
  const Vma* b = space_.FindVma(0x100000);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->name(), "b");
  // Touch state must land in the right VMA after the re-resolve.
  space_.TouchPage(0x10000, false, 1000);
  space_.MkOld(0x100000, 1000);
  EXPECT_TRUE(space_.IsYoung(0x10000));
  EXPECT_FALSE(space_.IsYoung(0x100000));
}

TEST_F(AddressSpaceTest, VmaIndexRepeatedLookupsStayCorrect) {
  // Alternating lookups between two VMAs and a hole: every answer must
  // come back right however the previous lookups landed.
  space_.Map(0x10000, 4 * kPageSize, "a");
  space_.Map(0x100000, 4 * kPageSize, "b");
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(space_.FindVma(0x10000)->name(), "a");
    EXPECT_EQ(space_.FindVma(0x100000)->name(), "b");
    EXPECT_EQ(space_.FindVma(0x50000), nullptr);
  }
}

// Invariant sweep: resident + swapped counters must match per-page state
// after arbitrary operation sequences.
class AddressSpaceInvariantTest : public ::testing::TestWithParam<int> {};

TEST_P(AddressSpaceInvariantTest, CountersMatchPageState) {
  Machine machine(SmallSpec(), SwapConfig::Zram(64 * MiB));
  AddressSpace space(1, &machine, 3.0);
  const Addr base = 4 * kHugePageSize;
  const std::uint64_t pages = 4 * kPagesPerHuge;
  space.Map(base, pages * kPageSize, "a");
  Rng rng(GetParam());
  for (int step = 0; step < 500; ++step) {
    const Addr a = base + rng.NextBounded(pages) * kPageSize;
    const Addr b = base + rng.NextBounded(pages) * kPageSize;
    const Addr lo = std::min(a, b);
    const Addr hi = std::max(a, b) + kPageSize;
    switch (rng.NextBounded(6)) {
      case 0:
        space.TouchPage(a, rng.NextBool(0.5), step * 1000);
        break;
      case 1:
        space.TouchRange(lo, hi, false, step * 1000);
        break;
      case 2:
        space.PageOutRange(lo, hi, step * 1000);
        break;
      case 3:
        space.SwapInRange(lo, hi, step * 1000);
        break;
      case 4:
        space.PromoteRange(lo, hi, step * 1000);
        break;
      case 5:
        space.DemoteRange(lo, hi);
        break;
    }
  }
  std::uint64_t resident = 0, swapped = 0, bloat = 0;
  const Vma* vma = space.FindVma(base);
  ASSERT_NE(vma, nullptr);
  for (std::size_t i = 0; i < vma->page_count(); ++i) {
    const auto pg = vma->PageAt(vma->AddrOfIndex(i));
    resident += pg.Present() ? 1 : 0;
    swapped += pg.Swapped() ? 1 : 0;
    bloat += pg.HugeBloat() ? 1 : 0;
    EXPECT_FALSE(pg.Present() && pg.Swapped());
  }
  EXPECT_EQ(space.resident_pages(), resident);
  EXPECT_EQ(space.swapped_pages(), swapped);
  EXPECT_EQ(space.bloat_pages(), bloat);
  EXPECT_EQ(machine.used_frames(), resident);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AddressSpaceInvariantTest,
                         ::testing::Range(1, 9));

}  // namespace
}  // namespace daos::sim
