#include "workload/serverless.hpp"

#include <gtest/gtest.h>

#include "sim/machine.hpp"
#include "sim/system.hpp"

namespace daos::workload {
namespace {

ServerlessConfig SmallConfig() {
  ServerlessConfig c;
  c.nr_processes = 2;
  c.rss_per_process = 64 * MiB;
  c.working_set_frac = 0.10;
  return c;
}

TEST(ServerSourceTest, PopulatesWholeHeapAtStartup) {
  sim::Machine machine(sim::MachineSpec{"t", 4, 3.0, 4 * GiB},
                       sim::SwapConfig::Zram());
  sim::AddressSpace space(1, &machine, 3.0);
  ServerSource source(SmallConfig(), 1);
  source.BuildLayout(space);
  source.EmitQuantum(space, 0, 5 * kUsPerMs);
  // The paper's §4.4 premise: RSS ~ 100 %, working set ~ 10 %.
  EXPECT_EQ(space.resident_bytes(), 64 * MiB);
}

TEST(ServerSourceTest, WorkingSetStaysHotColdGoesIdle) {
  sim::Machine machine(sim::MachineSpec{"t", 4, 3.0, 4 * GiB},
                       sim::SwapConfig::Zram());
  sim::AddressSpace space(1, &machine, 3.0);
  ServerSource source(SmallConfig(), 1);
  source.BuildLayout(space);
  source.EmitQuantum(space, 0, 5 * kUsPerMs);

  const Addr hot_probe = 0x20000000ULL;                 // head: working set
  const Addr cold_probe = 0x20000000ULL + 32 * MiB;     // middle: bloat
  space.MkOld(hot_probe, 10 * kUsPerMs);
  space.MkOld(cold_probe, 10 * kUsPerMs);
  for (SimTimeUs now = 10 * kUsPerMs; now < kUsPerSec; now += 5 * kUsPerMs)
    source.EmitQuantum(space, now, 5 * kUsPerMs);
  EXPECT_TRUE(space.IsYoung(hot_probe));
  EXPECT_FALSE(space.IsYoung(cold_probe));
}

TEST(ServerSourceTest, RunsForever) {
  const sim::ProcessParams p = ServerParams(SmallConfig(), 0);
  EXPECT_TRUE(p.run_forever);
  EXPECT_EQ(p.name, "server-0");
}

TEST(ServerlessFleetTest, FleetRssMatchesConfig) {
  const ServerlessConfig config = SmallConfig();
  sim::System system(sim::MachineSpec{"t", 8, 3.0, 8 * GiB},
                     sim::SwapConfig::Zram(), sim::ThpMode::kNever,
                     5 * kUsPerMs);
  for (int i = 0; i < config.nr_processes; ++i) {
    system.AddProcess(ServerParams(config, i),
                      std::make_unique<ServerSource>(config, 100 + i));
  }
  const sim::SystemMetrics m = system.Run(2 * kUsPerSec);
  ASSERT_EQ(m.processes.size(), 2u);
  for (const sim::ProcessMetrics& pm : m.processes) {
    EXPECT_FALSE(pm.finished);
    EXPECT_EQ(pm.final_rss_bytes, 64 * MiB);
  }
}

}  // namespace
}  // namespace daos::workload
