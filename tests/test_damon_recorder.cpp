#include "damon/recorder.hpp"

#include <gtest/gtest.h>

#include "sim/address_space.hpp"
#include "sim/machine.hpp"

namespace daos::damon {
namespace {

class RecorderTest : public ::testing::Test {
 protected:
  RecorderTest()
      : machine_(sim::MachineSpec{"t", 4, 3.0, 4 * GiB},
                 sim::SwapConfig::Zram()),
        space_(1, &machine_, 3.0) {
    space_.Map(0x10000000, 64 * MiB, "heap");
    ctx_.AddTarget(std::make_unique<VaddrPrimitives>(&space_));
  }

  void Drive(SimTimeUs from, SimTimeUs until, bool touch_hot) {
    for (SimTimeUs now = from; now < until;
         now += ctx_.attrs().sampling_interval) {
      if (touch_hot)
        space_.TouchRange(0x10000000, 0x10000000 + 8 * MiB, false, now);
      ctx_.Step(now, ctx_.attrs().sampling_interval);
    }
  }

  sim::Machine machine_;
  sim::AddressSpace space_;
  DamonContext ctx_{MonitoringAttrs::PaperDefaults()};
  Recorder recorder_;
};

TEST_F(RecorderTest, RecordsEveryAggregationByDefault) {
  recorder_.Attach(ctx_);
  Drive(0, 2 * kUsPerSec, true);
  // 2 s / 100 ms aggregation = ~20 snapshots (first aggregation boundary
  // timing gives +-1).
  EXPECT_GE(recorder_.snapshots().size(), 18u);
  EXPECT_LE(recorder_.snapshots().size(), 21u);
}

TEST_F(RecorderTest, ThrottledRecording) {
  recorder_.Attach(ctx_, /*every=*/kUsPerSec);
  Drive(0, 3 * kUsPerSec, true);
  EXPECT_LE(recorder_.snapshots().size(), 4u);
  EXPECT_GE(recorder_.snapshots().size(), 2u);
}

TEST_F(RecorderTest, SnapshotsCarryRegionData) {
  recorder_.Attach(ctx_);
  Drive(0, kUsPerSec, true);
  ASSERT_FALSE(recorder_.snapshots().empty());
  const Snapshot& snap = recorder_.snapshots().back();
  EXPECT_EQ(snap.target_index, 0);
  EXPECT_FALSE(snap.regions.empty());
  // The hot head of the heap must show accesses in some region.
  bool hot_seen = false;
  for (const SnapshotRegion& r : snap.regions) {
    if (r.start < 0x10000000 + 8 * MiB && r.nr_accesses > 0) hot_seen = true;
  }
  EXPECT_TRUE(hot_seen);
}

TEST_F(RecorderTest, SnapshotsAreTimeOrdered) {
  recorder_.Attach(ctx_);
  Drive(0, 2 * kUsPerSec, true);
  const auto& snaps = recorder_.snapshots();
  for (std::size_t i = 1; i < snaps.size(); ++i)
    EXPECT_GE(snaps[i].at, snaps[i - 1].at);
}

TEST_F(RecorderTest, WorkingSetEstimateTracksHotSize) {
  recorder_.Attach(ctx_);
  // Populate everything once so the space is resident, then keep only the
  // 8 MiB head hot; after a while the WSS estimate should be far below the
  // mapped 64 MiB and at least cover most of the hot head.
  space_.TouchRange(0x10000000, 0x10000000 + 64 * MiB, false, 0);
  Drive(0, 4 * kUsPerSec, true);
  const std::uint64_t wss = recorder_.LatestWorkingSetBytes();
  EXPECT_GT(wss, 4 * MiB);
  EXPECT_LT(wss, 40 * MiB);
}

TEST_F(RecorderTest, ClearDropsHistory) {
  recorder_.Attach(ctx_);
  Drive(0, kUsPerSec, true);
  ASSERT_FALSE(recorder_.snapshots().empty());
  recorder_.Clear();
  EXPECT_TRUE(recorder_.snapshots().empty());
}

TEST_F(RecorderTest, NoSnapshotsNoWss) {
  EXPECT_EQ(recorder_.LatestWorkingSetBytes(), 0u);
}

TEST_F(RecorderTest, ClearRefusedAfterRestoreTail) {
  // The footgun: a kdamond rebuilt from a checkpoint calls RestoreTail()
  // to re-seed its history; a later Clear() (the fresh-start path) would
  // silently truncate every heatmap at the crash point. The recorder must
  // refuse it and keep the restored history.
  recorder_.Attach(ctx_);
  Drive(0, kUsPerSec, true);
  ASSERT_FALSE(recorder_.snapshots().empty());

  std::vector<Snapshot> tail = recorder_.snapshots();
  const std::size_t restored_count = tail.size();
  recorder_.RestoreTail(std::move(tail), recorder_.next());
  ASSERT_TRUE(recorder_.restored());

  recorder_.Clear();  // refused (DAOS_CHECK logs; no abort, no truncation)
  EXPECT_EQ(recorder_.snapshots().size(), restored_count);

  // The restored recorder keeps appending normally after the refusal.
  Drive(kUsPerSec, 2 * kUsPerSec, true);
  EXPECT_GT(recorder_.snapshots().size(), restored_count);
}

}  // namespace
}  // namespace daos::damon
