#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <array>

namespace daos {
namespace {

TEST(Stats, MeanBasic) {
  const std::array<double, 4> xs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(Mean(xs), 2.5);
}

TEST(Stats, MeanEmpty) { EXPECT_DOUBLE_EQ(Mean({}), 0.0); }

TEST(Stats, StdevKnownValue) {
  const std::array<double, 4> xs{2, 4, 4, 6};
  EXPECT_NEAR(Stdev(xs), 1.632993, 1e-5);
}

TEST(Stats, StdevSinglePointIsZero) {
  const std::array<double, 1> xs{5};
  EXPECT_DOUBLE_EQ(Stdev(xs), 0.0);
}

TEST(Stats, MinMax) {
  const std::array<double, 5> xs{3, -1, 4, 1, 5};
  EXPECT_DOUBLE_EQ(Min(xs), -1);
  EXPECT_DOUBLE_EQ(Max(xs), 5);
}

TEST(Stats, PercentileEndpoints) {
  const std::array<double, 5> xs{10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0), 10);
  EXPECT_DOUBLE_EQ(Percentile(xs, 100), 50);
}

TEST(Stats, PercentileMedian) {
  const std::array<double, 5> xs{10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(Percentile(xs, 50), 30);
}

TEST(Stats, PercentileInterpolates) {
  const std::array<double, 2> xs{0, 10};
  EXPECT_DOUBLE_EQ(Percentile(xs, 25), 2.5);
}

TEST(Stats, PercentileUnsortedInput) {
  const std::array<double, 5> xs{50, 10, 40, 20, 30};
  EXPECT_DOUBLE_EQ(Percentile(xs, 50), 30);
}

TEST(Stats, CorrelationPerfectPositive) {
  const std::array<double, 4> xs{1, 2, 3, 4};
  const std::array<double, 4> ys{2, 4, 6, 8};
  EXPECT_NEAR(Correlation(xs, ys), 1.0, 1e-12);
}

TEST(Stats, CorrelationPerfectNegative) {
  const std::array<double, 4> xs{1, 2, 3, 4};
  const std::array<double, 4> ys{8, 6, 4, 2};
  EXPECT_NEAR(Correlation(xs, ys), -1.0, 1e-12);
}

TEST(Stats, CorrelationConstantSideIsZero) {
  const std::array<double, 3> xs{1, 1, 1};
  const std::array<double, 3> ys{1, 2, 3};
  EXPECT_DOUBLE_EQ(Correlation(xs, ys), 0.0);
}

TEST(RunningStats, MatchesBatchComputation) {
  const std::array<double, 6> xs{1.5, 2.5, -3, 8, 0, 4};
  RunningStats rs;
  for (double x : xs) rs.Add(x);
  EXPECT_EQ(rs.Count(), xs.size());
  EXPECT_NEAR(rs.Mean(), Mean(xs), 1e-12);
  EXPECT_NEAR(rs.Stdev(), Stdev(xs), 1e-12);
  EXPECT_DOUBLE_EQ(rs.Min(), -3);
  EXPECT_DOUBLE_EQ(rs.Max(), 8);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats rs;
  EXPECT_EQ(rs.Count(), 0u);
  EXPECT_DOUBLE_EQ(rs.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.Stdev(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats rs;
  rs.Add(7.0);
  EXPECT_DOUBLE_EQ(rs.Mean(), 7.0);
  EXPECT_DOUBLE_EQ(rs.Variance(), 0.0);
  EXPECT_DOUBLE_EQ(rs.Min(), 7.0);
  EXPECT_DOUBLE_EQ(rs.Max(), 7.0);
}

}  // namespace
}  // namespace daos
