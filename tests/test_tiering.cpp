// Tiered-memory substrate properties (labeled "tier;property"): the
// invariants the multi-tier subsystem must hold end-to-end.
//
//   - geometry text round-trips through ToText/ParseTierGeometry
//   - a single-tier geometry is "untiered": runs stay bit-identical to the
//     pre-tier engine (pinned to the same goldens the governor suite uses)
//   - pages are conserved across migrations even with tier.migrate_fail
//     injected: every resident page is charged to exactly one tier, and
//     non-elastic tiers never exceed capacity
//   - migrate scheme charges stay inside the governor quota window
//   - a tiered run records and replays bit-identically (DESIGN §11 holds
//     with the tier substrate armed)
//   - tiered runs are deterministic under the parallel runner (DAOS_JOBS
//     must not change results)
//   - FreeMemRatePermille gates on the *fast tier's* free rate when tiered
//     and keeps the legacy whole-DRAM meaning untiered
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/experiment.hpp"
#include "analysis/runner.hpp"
#include "damon/monitor.hpp"
#include "damon/primitives.hpp"
#include "damos/engine.hpp"
#include "damos/parser.hpp"
#include "fault/fault.hpp"
#include "governor/governor.hpp"
#include "sim/address_space.hpp"
#include "sim/machine.hpp"
#include "sim/tier.hpp"
#include "trace/writer.hpp"
#include "util/units.hpp"
#include "workload/profile.hpp"

namespace daos {
namespace {

constexpr Addr kBase = 0x10000000;
constexpr std::uint64_t kHeap = 64 * MiB;
constexpr std::uint64_t kHot = 8 * MiB;

sim::TierGeometry GeometryOrDie(const char* text) {
  sim::TierGeometry geo;
  std::string error;
  if (!sim::ParseTierGeometry(text, &geo, &error)) {
    ADD_FAILURE() << "geometry rejected: " << error;
  }
  return geo;
}

std::vector<damos::Scheme> MigrateSchemesOrDie(const char* text) {
  const damos::ParseResult parsed = damos::ParseSchemes(text);
  if (!parsed.ok()) {
    ADD_FAILURE() << "schemes rejected: " << parsed.errors[0].message;
  }
  return parsed.schemes;
}

// --- geometry text ----------------------------------------------------------

TEST(TierGeometryTest, ToTextParseRoundTrip) {
  const sim::TierGeometry geo = GeometryOrDie(
      "# fastest first\n"
      "dram 96M\n"
      "\n"
      "cxl 1G lat=0.6 bw=8G\n"
      "file 4G lat=2.0 bw=1G\n");
  ASSERT_EQ(geo.size(), 3u);

  sim::TierGeometry again;
  std::string error;
  ASSERT_TRUE(sim::ParseTierGeometry(geo.ToText(), &again, &error)) << error;
  ASSERT_EQ(again.size(), geo.size());
  for (std::size_t i = 0; i < geo.size(); ++i) {
    EXPECT_EQ(again.tiers[i].kind, geo.tiers[i].kind) << "tier " << i;
    EXPECT_EQ(again.tiers[i].capacity_bytes, geo.tiers[i].capacity_bytes);
    EXPECT_EQ(again.tiers[i].access_extra_us, geo.tiers[i].access_extra_us);
    EXPECT_EQ(again.tiers[i].migrate_bw_bytes_per_s,
              geo.tiers[i].migrate_bw_bytes_per_s);
  }
  EXPECT_EQ(geo.TotalCapacityBytes(), 96 * MiB + 1 * GiB + 4 * GiB);
}

TEST(TierGeometryTest, SingleTierGeometryIsUntiered) {
  const sim::TierGeometry geo = GeometryOrDie("dram 4G\n");
  EXPECT_FALSE(geo.tiered());

  sim::Machine machine(sim::MachineSpec{"t", 4, 3.0, 4 * GiB},
                       sim::SwapConfig::Zram());
  std::string error;
  ASSERT_TRUE(machine.SetTierGeometry(geo, &error)) << error;
  EXPECT_FALSE(machine.tiered());
  // Untiered placement: everything lands in "tier 0" and FaultIn takes the
  // single disarmed branch.
  EXPECT_EQ(machine.AllocTier(), 0u);
}

TEST(TierGeometryTest, GeometryRefusedWhileFramesInUse) {
  sim::Machine machine(sim::MachineSpec{"t", 4, 3.0, 4 * GiB},
                       sim::SwapConfig::Zram());
  sim::AddressSpace space(1, &machine, 3.0);
  space.Map(kBase, 4 * MiB, "heap");
  space.TouchRange(kBase, kBase + 4 * MiB, true, 0);

  std::string error;
  EXPECT_FALSE(machine.SetTierGeometry(
      GeometryOrDie("dram 16M\ncxl 64M lat=0.6\n"), &error));
  EXPECT_NE(error.find("no frame is in use"), std::string::npos) << error;
  EXPECT_FALSE(machine.tiered());
}

// --- disarmed bit-identity --------------------------------------------------

TEST(TieringPropertyTest, SingleTierRunMatchesPreTierGoldens) {
  if (std::getenv("DAOS_FAULTS") != nullptr)
    GTEST_SKIP() << "golden numbers assume a fault-free run";

  // Exactly the scenario test_governor_properties.cpp pins against the
  // pre-governor engine (commit 972e060): 64M heap, 8M re-touched head,
  // Prcl(2s) for 6 simulated seconds. Installing a *single-tier* geometry
  // must leave the machine untiered and every number untouched — the
  // "disarmed is one branch" contract of the tier substrate.
  sim::Machine machine(sim::MachineSpec{"t", 4, 3.0, 4 * GiB},
                       sim::SwapConfig::Zram());
  std::string error;
  ASSERT_TRUE(machine.SetTierGeometry(GeometryOrDie("dram 4G\n"), &error))
      << error;
  ASSERT_FALSE(machine.tiered());

  sim::AddressSpace space(1, &machine, 3.0);
  space.Map(kBase, kHeap, "heap");
  damon::DamonContext ctx(damon::MonitoringAttrs::PaperDefaults(),
                          /*seed=*/42);
  ctx.AddTarget(std::make_unique<damon::VaddrPrimitives>(&space));
  damos::SchemesEngine engine;
  engine.Install({damos::Scheme::Prcl(2 * kUsPerSec)});
  engine.Attach(ctx);
  space.TouchRange(kBase, kBase + kHeap, true, 0);
  for (SimTimeUs now = 0; now < 6 * kUsPerSec;
       now += ctx.attrs().sampling_interval) {
    space.TouchRange(kBase, kBase + kHot, false, now);
    ctx.Step(now, ctx.attrs().sampling_interval);
  }

  const damos::SchemeStats& st = engine.schemes()[0].stats();
  EXPECT_EQ(space.swapped_pages(), 14331u);
  EXPECT_EQ(space.resident_pages(), 2053u);
  EXPECT_EQ(st.nr_tried, 1031u);
  EXPECT_EQ(st.sz_tried, 2165346304u);
  EXPECT_EQ(st.nr_applied, 28u);
  EXPECT_EQ(st.sz_applied, 58699776u);
}

// --- page conservation under injected migration failures --------------------

TEST(TieringPropertyTest, PageConservationUnderMigrateFaults) {
  // Own plane (not FromEnv) so the failure probability is pinned: every
  // fifth-ish migration attempt fails mid-flight. The invariant: a failed
  // migration leaves the page charged to its source tier — at every step
  // the per-tier charges sum exactly to the resident pages, and no
  // non-elastic tier is ever over capacity.
  fault::FaultPlane plane(/*seed=*/7);
  fault::FaultSpec spec;
  spec.probability = 0.2;
  plane.Arm(fault::kTierMigrateFail, spec);

  sim::Machine machine(sim::MachineSpec{"tier", 4, 3.0, 4 * GiB},
                       sim::SwapConfig::Zram());
  machine.SetFaultPlane(&plane);
  std::string error;
  ASSERT_TRUE(machine.SetTierGeometry(
      GeometryOrDie("dram 8M\ncxl 24M lat=0.6\nfile 64M lat=2.0 bw=1G"),
      &error))
      << error;

  sim::AddressSpace space(1, &machine, 3.0);
  space.Map(kBase, kHeap, "heap");
  space.TouchRange(kBase, kBase + kHeap, true, 0);

  damon::DamonContext ctx(damon::MonitoringAttrs::PaperDefaults(),
                          /*seed=*/42);
  ctx.AddTarget(std::make_unique<damon::VaddrPrimitives>(&space));
  damos::SchemesEngine engine;
  engine.SetMachine(&machine);
  engine.Attach(ctx);
  ASSERT_TRUE(engine.InstallFromText(
      "min max 1 max min max migrate_hot quota_sz=16M quota_reset_ms=500\n"
      "min max min min 1s max migrate_cold quota_sz=16M "
      "quota_reset_ms=500\n"));

  const auto tier_pages_total = [&machine] {
    std::uint64_t sum = 0;
    for (std::size_t t = 0; t < machine.tier_geometry().size(); ++t)
      sum += machine.TierUsedPages(static_cast<std::uint16_t>(t));
    return sum;
  };

  // The hot window sits at the *end* of the heap — populate order put it in
  // the elastic file tier, so migrate_hot has real promotion work, and the
  // 8M dram tier (full since populate) forces migrate_cold to make room.
  for (SimTimeUs now = 0; now < 8 * kUsPerSec;
       now += ctx.attrs().sampling_interval) {
    space.TouchRange(kBase + kHeap - kHot, kBase + kHeap, false, now);
    ctx.Step(now, ctx.attrs().sampling_interval);
    ASSERT_EQ(tier_pages_total(), space.resident_pages())
        << "tier charges diverged from residency at t=" << now;
    for (std::size_t t = 0; t + 1 < machine.tier_geometry().size(); ++t) {
      ASSERT_LE(machine.TierUsedPages(static_cast<std::uint16_t>(t)) *
                    kPageSize,
                machine.tier_geometry().tiers[t].capacity_bytes)
          << "tier " << t << " over capacity at t=" << now;
    }
  }

  // The scenario must actually have exercised the fault path, both
  // migration directions, and the blocked-promotion fallback.
  const sim::MachineCounters& mc = machine.counters();
  EXPECT_GT(mc.tier_promoted_pages, 0u);
  EXPECT_GT(mc.tier_demoted_pages, 0u);
  EXPECT_GT(mc.tier_migrate_fails, 0u);
  EXPECT_GT(plane.Point(fault::kTierMigrateFail).fires(), 0u);
  // dbgfs surfaces the same counters.
  const std::string status = machine.TierStatusText();
  EXPECT_NE(status.find("dram"), std::string::npos) << status;
  EXPECT_NE(status.find("migrate_fails"), std::string::npos) << status;
}

// --- migration charges stay inside the governor quota -----------------------

TEST(TieringPropertyTest, MigrationChargeNeverExceedsQuota) {
  std::unique_ptr<fault::FaultPlane> faults = fault::FaultPlane::FromEnv();
  sim::Machine machine(sim::MachineSpec{"tier", 4, 3.0, 4 * GiB},
                       sim::SwapConfig::Zram());
  if (faults != nullptr) machine.SetFaultPlane(faults.get());
  std::string error;
  ASSERT_TRUE(machine.SetTierGeometry(
      GeometryOrDie("dram 16M\ncxl 96M lat=0.6 bw=8G"), &error))
      << error;

  sim::AddressSpace space(1, &machine, 3.0);
  space.Map(kBase, kHeap, "heap");
  space.TouchRange(kBase, kBase + kHeap, true, 0);

  damon::DamonContext ctx(damon::MonitoringAttrs::PaperDefaults(),
                          /*seed=*/42);
  ctx.AddTarget(std::make_unique<damon::VaddrPrimitives>(&space));
  damos::SchemesEngine engine;
  engine.SetMachine(&machine);
  engine.Attach(ctx);
  constexpr std::uint64_t kQuota = 4 * MiB;
  ASSERT_TRUE(engine.InstallFromText(
      "min max 1 max min max migrate_hot quota_sz=4M quota_reset_ms=1000\n"));

  // Same accounting identity the governor suite uses: total - in_flight is
  // the charge of *completed* windows, so deltas between rolls bound each
  // closed window. Migration charges are attempt-based — an injected
  // tier.migrate_fail must never let the scheme overdraw.
  const governor::QuotaState& qs = engine.governor().quota_state(0);
  std::uint64_t completed_prev = 0;
  std::uint64_t closed_windows = 0;
  for (SimTimeUs now = 0; now < 8 * kUsPerSec;
       now += ctx.attrs().sampling_interval) {
    space.TouchRange(kBase + kHeap - kHot, kBase + kHeap, false, now);
    ctx.Step(now, ctx.attrs().sampling_interval);
    ASSERT_LE(qs.charged_sz, kQuota);
    const std::uint64_t completed = qs.total_charged_sz - qs.charged_sz;
    if (completed != completed_prev) {
      ASSERT_LE(completed - completed_prev, kQuota);
      completed_prev = completed;
      ++closed_windows;
    }
  }

  const damos::SchemeStats& st = engine.schemes()[0].stats();
  EXPECT_GT(st.qt_exceeds, 0u);
  EXPECT_GE(closed_windows, 3u);
  EXPECT_GT(qs.total_charged_sz, 0u);
  EXPECT_LE(st.sz_applied, qs.total_charged_sz);
}

// --- tiered record -> replay bit-identity -----------------------------------

workload::WorkloadProfile TierTestProfile() {
  workload::WorkloadProfile p;
  p.name = "test/tiering";
  p.suite = "test";
  p.data_bytes = 96 * MiB;
  p.runtime_s = 8.0;
  p.mem_boundness = 0.6;
  p.thp_gain = 0.0;
  p.noise = 0.0;
  p.pattern = workload::PatternKind::kPhased;
  p.phase_period_s = 3.0;
  p.groups = {{0.5, 0.0, 1.0, 0.3}, {0.25, 2.0, 1.0, 0.3},
              {0.25, -1.0, 1.0, 0.1}};
  return p;
}

constexpr const char* kTestMigrateSchemes =
    "min max 1 max min max migrate_hot quota_sz=32M quota_reset_ms=1000\n"
    "min max min min 1s max migrate_cold quota_sz=32M quota_reset_ms=1000\n";

void ExpectResultsIdentical(const analysis::ExperimentResult& a,
                            const analysis::ExperimentResult& b) {
  EXPECT_EQ(a.runtime_s, b.runtime_s);
  EXPECT_EQ(a.finished, b.finished);
  EXPECT_EQ(a.avg_rss_bytes, b.avg_rss_bytes);
  EXPECT_EQ(a.peak_rss_bytes, b.peak_rss_bytes);
  EXPECT_EQ(a.major_faults, b.major_faults);
  EXPECT_EQ(a.interference_s, b.interference_s);
  ASSERT_EQ(a.scheme_stats.size(), b.scheme_stats.size());
  for (std::size_t i = 0; i < a.scheme_stats.size(); ++i) {
    EXPECT_EQ(a.scheme_stats[i].nr_tried, b.scheme_stats[i].nr_tried);
    EXPECT_EQ(a.scheme_stats[i].sz_tried, b.scheme_stats[i].sz_tried);
    EXPECT_EQ(a.scheme_stats[i].nr_applied, b.scheme_stats[i].nr_applied);
    EXPECT_EQ(a.scheme_stats[i].sz_applied, b.scheme_stats[i].sz_applied);
  }
  // The tier plane's counters and the mismatch gauge must agree too.
  for (const char* name :
       {"sim.tier.promoted_pages", "sim.tier.demoted_pages",
        "sim.tier.slow_touches", "sim.tier.migrate_fails",
        "sim.tier.hot_mismatch_permille"}) {
    EXPECT_EQ(a.telemetry.Value(name), b.telemetry.Value(name)) << name;
  }
}

TEST(TieringPropertyTest, TieredRecordReplayBitIdentity) {
  const workload::WorkloadProfile profile = TierTestProfile();
  const std::vector<damos::Scheme> schemes =
      MigrateSchemesOrDie(kTestMigrateSchemes);

  analysis::ExperimentOptions options;
  options.apply_runtime_noise = false;
  options.seed = 7;
  options.tiers = GeometryOrDie("dram 24M\ncxl 96M lat=0.6 bw=8G");
  trace::TraceWriter writer([&profile] {
    trace::TraceMeta meta;
    meta.name = profile.name;
    meta.data_bytes = profile.data_bytes;
    meta.runtime_s = profile.runtime_s;
    meta.mem_boundness = profile.mem_boundness;
    return meta;
  }());
  options.record_tap = &writer;
  const analysis::ExperimentResult recorded = analysis::RunWorkload(
      profile, analysis::Config::kSchemes, options, &schemes);
  ASSERT_TRUE(recorded.finished);
  ASSERT_GT(writer.events(), 0u);
  // The tiered run must have done access-aware placement worth replaying.
  EXPECT_GT(recorded.telemetry.Value("sim.tier.promoted_pages"), 0.0);

  const std::string path = ::testing::TempDir() + "/tiering_replay.dtr";
  std::string error;
  ASSERT_TRUE(writer.WriteFile(path, &error)) << error;
  const std::optional<workload::WorkloadProfile> replay_profile =
      workload::ResolveProfile("trace:" + path, &error);
  ASSERT_TRUE(replay_profile.has_value()) << error;

  analysis::ExperimentOptions replay_options;
  replay_options.apply_runtime_noise = false;
  replay_options.seed = 7;
  replay_options.tiers = options.tiers;
  const analysis::ExperimentResult replayed = analysis::RunWorkload(
      *replay_profile, analysis::Config::kSchemes, replay_options, &schemes);

  ExpectResultsIdentical(recorded, replayed);
}

// --- parallel-runner determinism with tiers armed ---------------------------

TEST(TieringPropertyTest, TieredRunsDeterministicUnderParallelRunner) {
  // The DAOS_JOBS contract (1 worker vs 4 workers, bit-identical results)
  // must survive the tier substrate in both its forms: the LRU balancer
  // and DAMOS migrate schemes under quotas.
  const sim::TierGeometry tiers =
      GeometryOrDie("dram 24M\ncxl 96M lat=0.6 bw=8G");
  const std::vector<damos::Scheme> schemes =
      MigrateSchemesOrDie(kTestMigrateSchemes);

  std::vector<analysis::RunSpec> specs;
  for (const bool damos_run : {false, true}) {
    for (const std::uint64_t seed : {1ull, 2ull}) {
      analysis::RunSpec spec;
      spec.profile = TierTestProfile();
      spec.options.apply_runtime_noise = false;
      spec.options.seed = seed;
      spec.options.tiers = tiers;
      if (damos_run) {
        spec.config = analysis::Config::kSchemes;
        spec.schemes = schemes;
      } else {
        spec.config = analysis::Config::kBaseline;
        spec.options.tier_policy = sim::TierPolicy::kLruDemote;
      }
      specs.push_back(spec);
    }
  }

  analysis::ParallelRunner serial(1);
  analysis::ParallelRunner parallel(4);
  const auto serial_results = serial.Run(specs);
  const auto parallel_results = parallel.Run(specs);
  ASSERT_EQ(serial_results.size(), parallel_results.size());
  for (std::size_t i = 0; i < serial_results.size(); ++i) {
    SCOPED_TRACE("spec " + std::to_string(i));
    ExpectResultsIdentical(serial_results[i], parallel_results[i]);
    // Full telemetry equality (same spec both sides, so every sample —
    // monitor, governor, tier — must match).
    const auto& sa = serial_results[i].telemetry.samples();
    const auto& sb = parallel_results[i].telemetry.samples();
    ASSERT_EQ(sa.size(), sb.size());
    for (std::size_t s = 0; s < sa.size(); ++s) {
      EXPECT_EQ(sa[s].name, sb[s].name);
      EXPECT_EQ(sa[s].value, sb[s].value) << sa[s].name;
      EXPECT_EQ(sa[s].count, sb[s].count) << sa[s].name;
    }
  }
}

// --- free_mem_rate watermark metric -----------------------------------------

TEST(FreeMemRateTest, UntieredLegacyGolden) {
  // The untiered formula is unchanged by the tier substrate: free permille
  // of the whole DRAM, exact integer arithmetic.
  sim::Machine machine(sim::MachineSpec{"t", 4, 3.0, 1 * GiB},
                       sim::SwapConfig::Zram());
  EXPECT_EQ(machine.FreeMemRatePermille(), 1000u);
  machine.ChargeFrames((512 * MiB) >> kPageShift);
  EXPECT_EQ(machine.FreeMemRatePermille(), 500u);
  machine.ChargeFrames((256 * MiB) >> kPageShift);
  EXPECT_EQ(machine.FreeMemRatePermille(), 250u);
  machine.UnchargeFrames((768 * MiB) >> kPageShift);
  EXPECT_EQ(machine.FreeMemRatePermille(), 1000u);
}

TEST(FreeMemRateTest, TieredGatesOnFastTierFreeRate) {
  // 16M dram + 1G cxl inside a 4G machine: once the fast tier fills, the
  // metric must read exhausted even though whole-machine DRAM is almost
  // idle — watermarks protect the scarce resource. The legacy formula
  // would report ~983‰ here; a wmark-gated scheme would never arm.
  sim::Machine machine(sim::MachineSpec{"t", 4, 3.0, 4 * GiB},
                       sim::SwapConfig::Zram());
  std::string error;
  ASSERT_TRUE(machine.SetTierGeometry(
      GeometryOrDie("dram 16M\ncxl 1G lat=0.6"), &error))
      << error;
  EXPECT_EQ(machine.FreeMemRatePermille(), 1000u);

  sim::AddressSpace space(1, &machine, 3.0);
  space.Map(kBase, kHeap, "heap");
  // First-fit fills dram first: 8M touched = half the fast tier.
  space.TouchRange(kBase, kBase + 8 * MiB, true, 0);
  EXPECT_EQ(machine.FreeMemRatePermille(), 500u);

  // The full 64M populate overflows into cxl; the fast tier is pinned full
  // and the metric reads 0 despite ~98% of machine DRAM being free.
  space.TouchRange(kBase, kBase + kHeap, true, 0);
  EXPECT_EQ(machine.TierUsedPages(0) * kPageSize, 16 * MiB);
  EXPECT_EQ(machine.FreeMemRatePermille(), 0u);
  EXPECT_LT(machine.dram_used_bytes(), machine.dram_capacity() / 10);
}

}  // namespace
}  // namespace daos
