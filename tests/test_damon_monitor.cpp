#include "damon/monitor.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "sim/address_space.hpp"
#include "sim/machine.hpp"
#include "util/rng.hpp"

namespace daos::damon {
namespace {

sim::MachineSpec Spec() { return sim::MachineSpec{"t", 4, 3.0, 4 * GiB}; }

class MonitorTest : public ::testing::Test {
 protected:
  MonitorTest() : machine_(Spec(), sim::SwapConfig::Zram()) {}

  std::unique_ptr<sim::AddressSpace> MakeSpace(std::uint64_t data_mib) {
    auto space = std::make_unique<sim::AddressSpace>(1, &machine_, 3.0);
    space->Map(0x10000000, data_mib * MiB, "heap");
    return space;
  }

  sim::Machine machine_;
};

TEST_F(MonitorTest, InitRegionsRespectsMinimum) {
  auto space = MakeSpace(64);
  DamonContext ctx(MonitoringAttrs::PaperDefaults());
  DamonTarget& target =
      ctx.AddTarget(std::make_unique<VaddrPrimitives>(space.get()));
  ctx.InitRegionsFor(target);
  EXPECT_GE(target.regions.size(), 10u);
  // Regions tile the target without holes or overlap.
  for (std::size_t i = 0; i + 1 < target.regions.size(); ++i) {
    EXPECT_EQ(target.regions[i].end, target.regions[i + 1].start);
  }
  EXPECT_EQ(target.regions.front().start, 0x10000000u);
  EXPECT_EQ(target.regions.back().end, 0x10000000u + 64 * MiB);
}

TEST_F(MonitorTest, RegionCountStaysWithinBounds) {
  auto space = MakeSpace(256);
  MonitoringAttrs attrs;
  attrs.min_nr_regions = 10;
  attrs.max_nr_regions = 100;
  DamonContext ctx(attrs);
  ctx.AddTarget(std::make_unique<VaddrPrimitives>(space.get()));

  // Drive with a shifting hot window to force splits and merges.
  for (SimTimeUs now = 0; now < 5 * kUsPerSec; now += attrs.sampling_interval) {
    const Addr hot = 0x10000000 + (now / kUsPerSec) * 16 * MiB;
    space->TouchRange(hot, hot + 16 * MiB, false, now);
    ctx.Step(now, attrs.sampling_interval);
    EXPECT_LE(ctx.TotalRegions(), attrs.max_nr_regions);
  }
  EXPECT_GT(ctx.counters().region_splits, 0u);
  EXPECT_GT(ctx.counters().region_merges, 0u);
}

TEST_F(MonitorTest, HotRegionGetsHighAccessCounts) {
  auto space = MakeSpace(128);
  MonitoringAttrs attrs;
  DamonContext ctx(attrs, /*seed=*/1);
  ctx.AddTarget(std::make_unique<VaddrPrimitives>(space.get()));

  // Hot: first 16 MiB touched continuously; rest touched once at start.
  space->TouchRange(0x10000000, 0x10000000 + 128 * MiB, false, 0);
  std::uint32_t hot_hits = 0, cold_hits = 0;
  ctx.AddAggregationHook([&](DamonContext& c, SimTimeUs) {
    for (const Region& r : c.targets()[0].regions) {
      const bool hot = r.start < 0x10000000 + 16 * MiB;
      const std::uint32_t max_checks = c.attrs().MaxChecksPerAggregation();
      if (hot && r.nr_accesses > max_checks / 2) ++hot_hits;
      if (!hot && r.nr_accesses <= 1) ++cold_hits;
    }
  });
  for (SimTimeUs now = 0; now < 3 * kUsPerSec; now += attrs.sampling_interval) {
    space->TouchRange(0x10000000, 0x10000000 + 16 * MiB, false, now);
    ctx.Step(now, attrs.sampling_interval);
  }
  EXPECT_GT(hot_hits, 0u);
  EXPECT_GT(cold_hits, 0u);
}

TEST_F(MonitorTest, AgingGrowsForStableRegions) {
  auto space = MakeSpace(64);
  MonitoringAttrs attrs;
  DamonContext ctx(attrs);
  ctx.AddTarget(std::make_unique<VaddrPrimitives>(space.get()));
  space->TouchRange(0x10000000, 0x10000000 + 64 * MiB, false, 0);

  std::uint32_t max_age_seen = 0;
  ctx.AddAggregationHook([&](DamonContext& c, SimTimeUs) {
    for (const Region& r : c.targets()[0].regions)
      max_age_seen = std::max(max_age_seen, r.age);
  });
  // Untouched memory: regions stay at zero accesses and age steadily.
  for (SimTimeUs now = 0; now < 3 * kUsPerSec; now += attrs.sampling_interval)
    ctx.Step(now, attrs.sampling_interval);
  // ~30 aggregations happened; ages should have grown substantially.
  EXPECT_GE(max_age_seen, 10u);
}

TEST_F(MonitorTest, AccessChangeResetsAge) {
  auto space = MakeSpace(32);
  MonitoringAttrs attrs;
  DamonContext ctx(attrs);
  ctx.AddTarget(std::make_unique<VaddrPrimitives>(space.get()));
  space->TouchRange(0x10000000, 0x10000000 + 32 * MiB, false, 0);

  // Let everything age while idle.
  for (SimTimeUs now = 0; now < 2 * kUsPerSec; now += attrs.sampling_interval)
    ctx.Step(now, attrs.sampling_interval);

  // Suddenly make everything hot; young regions must show reset ages.
  bool saw_reset = false;
  ctx.AddAggregationHook([&](DamonContext& c, SimTimeUs) {
    for (const Region& r : c.targets()[0].regions) {
      if (r.nr_accesses > c.attrs().MaxChecksPerAggregation() / 2 &&
          r.age <= 2)
        saw_reset = true;
    }
  });
  for (SimTimeUs now = 2 * kUsPerSec; now < 3 * kUsPerSec;
       now += attrs.sampling_interval) {
    space->TouchRange(0x10000000, 0x10000000 + 32 * MiB, false, now);
    ctx.Step(now, attrs.sampling_interval);
  }
  EXPECT_TRUE(saw_reset);
}

TEST_F(MonitorTest, SplitInheritsAgeAndCounts) {
  auto space = MakeSpace(64);
  DamonContext ctx(MonitoringAttrs::PaperDefaults());
  DamonTarget& target =
      ctx.AddTarget(std::make_unique<VaddrPrimitives>(space.get()));
  ctx.InitRegionsFor(target);
  for (Region& r : target.regions) {
    r.age = 7;
    r.nr_accesses = 3;
  }
  const std::size_t before = target.regions.size();
  ctx.SplitRegions(target);
  EXPECT_GT(target.regions.size(), before);
  for (const Region& r : target.regions) {
    EXPECT_EQ(r.age, 7u);
    EXPECT_EQ(r.nr_accesses, 3u);
  }
}

TEST_F(MonitorTest, MergeUsesSizeWeightedAge) {
  auto space = MakeSpace(64);
  DamonContext ctx(MonitoringAttrs::PaperDefaults());
  DamonTarget& target =
      ctx.AddTarget(std::make_unique<VaddrPrimitives>(space.get()));
  // Two adjacent regions, same access count, different size and age.
  target.regions = {
      Region{0x10000000, 0x10000000 + 3 * MiB, 0, 0, 12, 0},
      Region{0x10000000 + 3 * MiB, 0x10000000 + 4 * MiB, 0, 0, 4, 0},
  };
  ctx.MergeRegions(target, /*threshold=*/2, /*sz_limit=*/GiB);
  ASSERT_EQ(target.regions.size(), 1u);
  EXPECT_EQ(target.regions[0].age, 10u);  // (12*3 + 4*1) / 4
}

TEST_F(MonitorTest, MergeRespectsThreshold) {
  auto space = MakeSpace(64);
  DamonContext ctx(MonitoringAttrs::PaperDefaults());
  DamonTarget& target =
      ctx.AddTarget(std::make_unique<VaddrPrimitives>(space.get()));
  target.regions = {
      Region{0x10000000, 0x10000000 + MiB, 20, 20, 0, 0},
      Region{0x10000000 + MiB, 0x10000000 + 2 * MiB, 0, 0, 0, 0},
  };
  ctx.MergeRegions(target, /*threshold=*/2, /*sz_limit=*/GiB);
  EXPECT_EQ(target.regions.size(), 2u);  // too different to merge
}

TEST_F(MonitorTest, MergeRespectsSizeLimit) {
  auto space = MakeSpace(64);
  DamonContext ctx(MonitoringAttrs::PaperDefaults());
  DamonTarget& target =
      ctx.AddTarget(std::make_unique<VaddrPrimitives>(space.get()));
  target.regions = {
      Region{0x10000000, 0x10000000 + 4 * MiB, 1, 1, 0, 0},
      Region{0x10000000 + 4 * MiB, 0x10000000 + 8 * MiB, 1, 1, 0, 0},
  };
  ctx.MergeRegions(target, /*threshold=*/2, /*sz_limit=*/6 * MiB);
  EXPECT_EQ(target.regions.size(), 2u);  // merged size would exceed limit
}

TEST_F(MonitorTest, LayoutChangeTriggersRegionsUpdate) {
  auto space = MakeSpace(64);
  MonitoringAttrs attrs;
  DamonContext ctx(attrs);
  ctx.AddTarget(std::make_unique<VaddrPrimitives>(space.get()));
  for (SimTimeUs now = 0; now < kUsPerSec + 10 * kUsPerMs;
       now += attrs.sampling_interval)
    ctx.Step(now, attrs.sampling_interval);
  const std::uint64_t updates_before = ctx.counters().regions_updates;

  // mmap() a new area; within one regions-update interval the monitor must
  // pick it up (the paper's mmap()/memory-hotplug events, §3.1).
  space->Map(0x40000000, 32 * MiB, "mmap");
  for (SimTimeUs now = kUsPerSec + 10 * kUsPerMs; now < 3 * kUsPerSec;
       now += attrs.sampling_interval)
    ctx.Step(now, attrs.sampling_interval);
  EXPECT_GT(ctx.counters().regions_updates, updates_before);

  Addr max_end = 0;
  for (const Region& r : ctx.targets()[0].regions)
    max_end = std::max(max_end, r.end);
  EXPECT_EQ(max_end, 0x40000000u + 32 * MiB);
}

TEST_F(MonitorTest, CallbackSeesCountsBeforeReset) {
  auto space = MakeSpace(32);
  MonitoringAttrs attrs;
  DamonContext ctx(attrs);
  ctx.AddTarget(std::make_unique<VaddrPrimitives>(space.get()));
  std::uint64_t total_accesses = 0;
  ctx.AddAggregationHook([&](DamonContext& c, SimTimeUs) {
    for (const Region& r : c.targets()[0].regions)
      total_accesses += r.nr_accesses;
  });
  for (SimTimeUs now = 0; now < 2 * kUsPerSec; now += attrs.sampling_interval) {
    space->TouchRange(0x10000000, 0x10000000 + 32 * MiB, false, now);
    ctx.Step(now, attrs.sampling_interval);
  }
  EXPECT_GT(total_accesses, 0u);
}

TEST_F(MonitorTest, OverheadBoundedByMaxRegions) {
  // The paper's key guarantee: monitoring overhead depends on the region
  // cap, not on target size. Compare samples for 64 MiB vs 2 GiB targets.
  MonitoringAttrs attrs;
  auto run = [&](std::uint64_t mib) {
    auto space = MakeSpace(mib);
    DamonContext ctx(attrs);
    ctx.AddTarget(std::make_unique<VaddrPrimitives>(space.get()));
    for (SimTimeUs now = 0; now < 2 * kUsPerSec;
         now += attrs.sampling_interval) {
      space->TouchRange(0x10000000, 0x10000000 + mib * MiB / 8, false, now);
      ctx.Step(now, attrs.sampling_interval);
    }
    return ctx.counters().samples;
  };
  const std::uint64_t small = run(64);
  const std::uint64_t large = run(2048);
  // Within 3x of each other despite 32x the memory.
  EXPECT_LT(static_cast<double>(large),
            3.0 * static_cast<double>(small) + 1000);
}

TEST_F(MonitorTest, CpuAccountingGrowsWithWork) {
  auto space = MakeSpace(64);
  MonitoringAttrs attrs;
  DamonContext ctx(attrs);
  ctx.AddTarget(std::make_unique<VaddrPrimitives>(space.get()));
  for (SimTimeUs now = 0; now < kUsPerSec; now += attrs.sampling_interval)
    ctx.Step(now, attrs.sampling_interval);
  EXPECT_GT(ctx.counters().samples, 0u);
  EXPECT_GT(ctx.counters().cpu_us, 0.0);
  EXPECT_GT(ctx.CpuFraction(kUsPerSec), 0.0);
  EXPECT_LT(ctx.CpuFraction(kUsPerSec), 0.05);  // ~paper's 1.4 % claim
}

TEST_F(MonitorTest, StepReturnsInterference) {
  auto space = MakeSpace(64);
  MonitoringAttrs attrs;
  DamonContext ctx(attrs, 42, /*interference_per_sample_us=*/0.1);
  ctx.AddTarget(std::make_unique<VaddrPrimitives>(space.get()));
  double total = 0.0;
  for (SimTimeUs now = 0; now < kUsPerSec; now += attrs.sampling_interval)
    total += ctx.Step(now, attrs.sampling_interval);
  EXPECT_GT(total, 0.0);
}

// Parameterized: the region bound holds across caps under churn.
class MonitorRegionCapTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(MonitorRegionCapTest, NeverExceedsCap) {
  const std::uint32_t cap = GetParam();
  sim::Machine machine(Spec(), sim::SwapConfig::Zram());
  sim::AddressSpace space(1, &machine, 3.0);
  space.Map(0x10000000, 512 * MiB, "heap");
  MonitoringAttrs attrs;
  attrs.min_nr_regions = std::min<std::uint32_t>(10, cap);
  attrs.max_nr_regions = cap;
  DamonContext ctx(attrs, cap);
  ctx.AddTarget(std::make_unique<VaddrPrimitives>(&space));
  Rng rng(cap);
  for (SimTimeUs now = 0; now < 3 * kUsPerSec; now += attrs.sampling_interval) {
    const Addr hot = 0x10000000 + rng.NextBounded(16) * 16 * MiB;
    space.TouchRange(hot, hot + 8 * MiB, false, now);
    ctx.Step(now, attrs.sampling_interval);
    ASSERT_LE(ctx.TotalRegions(), cap);
  }
}

INSTANTIATE_TEST_SUITE_P(Caps, MonitorRegionCapTest,
                         ::testing::Values(20, 100, 1000));

}  // namespace
}  // namespace daos::damon
