#include "telemetry/metrics.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace daos::telemetry {
namespace {

TEST(MetricsRegistryTest, CounterBasics) {
  MetricsRegistry reg;
  Counter& c = reg.GetCounter("damon.ctx0.samples");
  EXPECT_EQ(c.value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(MetricsRegistryTest, SameNameSameKindReturnsSameInstrument) {
  MetricsRegistry reg;
  Counter& a = reg.GetCounter("x.y");
  Counter& b = reg.GetCounter("x.y");
  EXPECT_EQ(&a, &b);
  a.Add(3);
  EXPECT_EQ(b.value(), 3u);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricsRegistryTest, KindCollisionThrows) {
  MetricsRegistry reg;
  reg.GetCounter("x.y");
  EXPECT_THROW(reg.GetGauge("x.y"), std::logic_error);
  EXPECT_THROW(reg.GetHistogram("x.y"), std::logic_error);
  reg.GetGauge("g");
  EXPECT_THROW(reg.GetCounter("g"), std::logic_error);
  // The failed registrations must not have clobbered anything.
  EXPECT_EQ(reg.size(), 2u);
}

TEST(MetricsRegistryTest, HistogramReboundWithDifferentBoundsThrows) {
  MetricsRegistry reg;
  reg.GetHistogram("h", {1.0, 2.0});
  EXPECT_NO_THROW(reg.GetHistogram("h", {1.0, 2.0}));
  EXPECT_THROW(reg.GetHistogram("h", {1.0, 3.0}), std::logic_error);
}

TEST(MetricsRegistryTest, LookupAndNames) {
  MetricsRegistry reg;
  reg.GetCounter("b.counter");
  reg.GetGauge("a.gauge");
  InstrumentKind kind;
  EXPECT_TRUE(reg.Lookup("b.counter", &kind));
  EXPECT_EQ(kind, InstrumentKind::kCounter);
  EXPECT_TRUE(reg.Lookup("a.gauge", &kind));
  EXPECT_EQ(kind, InstrumentKind::kGauge);
  EXPECT_FALSE(reg.Lookup("nope", &kind));
  // Names come back sorted (map order).
  EXPECT_EQ(reg.Names(), (std::vector<std::string>{"a.gauge", "b.counter"}));
}

TEST(MetricsRegistryTest, GaugeSetAndAdd) {
  MetricsRegistry reg;
  Gauge& g = reg.GetGauge("sim.dram_used_bytes");
  g.Set(10.0);
  g.Add(-2.5);
  EXPECT_DOUBLE_EQ(g.value(), 7.5);
}

TEST(MetricsRegistryTest, HistogramBucketBoundaries) {
  MetricsRegistry reg;
  Histogram& h = reg.GetHistogram("lat", {1.0, 10.0, 100.0});
  // `le` semantics: a value equal to a bound lands in that bound's bucket.
  h.Observe(0.5);    // <= 1
  h.Observe(1.0);    // <= 1 (boundary)
  h.Observe(1.0001); // <= 10
  h.Observe(10.0);   // <= 10 (boundary)
  h.Observe(99.9);   // <= 100
  h.Observe(100.0);  // <= 100 (boundary)
  h.Observe(101.0);  // +Inf overflow
  EXPECT_EQ(h.bucket_counts(),
            (std::vector<std::uint64_t>{2, 2, 2, 1}));
  EXPECT_EQ(h.count(), 7u);
  EXPECT_NEAR(h.sum(), 0.5 + 1.0 + 1.0001 + 10.0 + 99.9 + 100.0 + 101.0, 1e-9);
}

TEST(MetricsRegistryTest, HistogramUnsortedBoundsRejected) {
  MetricsRegistry reg;
  EXPECT_THROW(reg.GetHistogram("bad", {10.0, 1.0}), std::logic_error);
  EXPECT_THROW(reg.GetHistogram("dup", {1.0, 1.0}), std::logic_error);
}

TEST(MetricsRegistryTest, InstrumentAddressesAreStable) {
  // The hot-path contract: a handle resolved at bind time stays valid as
  // the registry grows, so call sites never re-look-up by name.
  MetricsRegistry reg;
  Counter& first = reg.GetCounter("first");
  for (int i = 0; i < 200; ++i)
    reg.GetCounter("filler." + std::to_string(i));
  EXPECT_EQ(&first, &reg.GetCounter("first"));
  first.Add(7);
  EXPECT_EQ(reg.GetCounter("first").value(), 7u);
}

TEST(MetricsRegistryTest, HotPathIsPlainIncrement) {
  // No locks, no allocation, no formatting: Add/Set/Observe are noexcept
  // arithmetic on pre-resolved cells. noexcept is the compile-time proxy —
  // anything that allocated or formatted could not honestly carry it.
  MetricsRegistry reg;
  Counter& c = reg.GetCounter("c");
  Gauge& g = reg.GetGauge("g");
  Histogram& h = reg.GetHistogram("h", {1.0});
  static_assert(noexcept(c.Add(1)));
  static_assert(noexcept(g.Set(1.0)));
  static_assert(noexcept(h.Observe(1.0)));
  // And a tight loop stays exact (no sampling, no saturation).
  for (int i = 0; i < 1'000'000; ++i) c.Add(1);
  EXPECT_EQ(c.value(), 1'000'000u);
}

TEST(MetricsSnapshotTest, SnapshotDetachesAndLooksUp) {
  MetricsRegistry reg;
  reg.GetCounter("damon.ctx0.samples").Add(5);
  reg.GetGauge("damon.ctx0.cpu_us").Set(1.25);
  Histogram& h = reg.GetHistogram("lat", {10.0});
  h.Observe(3.0);
  h.Observe(30.0);

  MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.samples().size(), 3u);
  EXPECT_DOUBLE_EQ(snap.Value("damon.ctx0.samples"), 5.0);
  EXPECT_DOUBLE_EQ(snap.Value("damon.ctx0.cpu_us"), 1.25);
  EXPECT_DOUBLE_EQ(snap.Value("missing", -1.0), -1.0);

  const MetricSample* s = snap.Find("lat");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->kind, InstrumentKind::kHistogram);
  EXPECT_EQ(s->count, 2u);
  EXPECT_EQ(s->buckets, (std::vector<std::uint64_t>{1, 1}));

  // Detached: later registry updates don't leak into the snapshot.
  reg.GetCounter("damon.ctx0.samples").Add(100);
  EXPECT_DOUBLE_EQ(snap.Value("damon.ctx0.samples"), 5.0);
}

}  // namespace
}  // namespace daos::telemetry
