#include "analysis/experiment.hpp"

#include <gtest/gtest.h>

#include "analysis/report.hpp"

namespace daos::analysis {
namespace {

/// A fast test workload: 128 MiB, 10 s nominal runtime, 30 % hot / 20 %
/// warm / 50 % cold — small enough that a full run takes milliseconds.
workload::WorkloadProfile FastProfile() {
  workload::WorkloadProfile p;
  p.name = "test/fast";
  p.suite = "test";
  p.data_bytes = 128 * MiB;
  p.runtime_s = 10;
  p.noise = 0.0;
  p.thp_gain = 0.15;
  p.groups = {
      workload::GroupSpec{0.30, 0.0, 1.0, 0.3},
      workload::GroupSpec{0.20, 3.0, 1.0, 0.3},
      workload::GroupSpec{0.50, -1.0, 0.6, 0.2},
  };
  p.zipf_touches_per_s = 8000;
  return p;
}

ExperimentOptions FastOptions() {
  ExperimentOptions opt;
  opt.max_time = 120 * kUsPerSec;
  opt.apply_runtime_noise = false;
  return opt;
}

TEST(ExperimentTest, BaselineFinishesAtNominalRuntime) {
  const ExperimentResult r =
      RunWorkload(FastProfile(), Config::kBaseline, FastOptions());
  EXPECT_TRUE(r.finished);
  // Populate stall adds a little over the nominal 10 s.
  EXPECT_NEAR(r.runtime_s, 10.0, 0.7);
  EXPECT_GT(r.avg_rss_bytes, 0.0);
  EXPECT_DOUBLE_EQ(r.monitor_cpu_fraction, 0.0);  // no monitoring
}

TEST(ExperimentTest, RecMonitorsWithSmallOverhead) {
  const ExperimentResult base =
      RunWorkload(FastProfile(), Config::kBaseline, FastOptions());
  const ExperimentResult rec =
      RunWorkload(FastProfile(), Config::kRec, FastOptions());
  EXPECT_TRUE(rec.finished);
  EXPECT_GT(rec.monitor_cpu_fraction, 0.0);
  EXPECT_LT(rec.monitor_cpu_fraction, 0.05);
  // Conclusion-3: at most a few percent slowdown.
  EXPECT_LT(rec.runtime_s / base.runtime_s, 1.05);
}

TEST(ExperimentTest, PrecMonitorsPhysicalSpace) {
  const ExperimentResult prec =
      RunWorkload(FastProfile(), Config::kPrec, FastOptions());
  EXPECT_TRUE(prec.finished);
  EXPECT_GT(prec.monitor_cpu_fraction, 0.0);
  EXPECT_LT(prec.monitor_cpu_fraction, 0.05);
}

TEST(ExperimentTest, ThpBloatsAndSpeedsUp) {
  const ExperimentResult base =
      RunWorkload(FastProfile(), Config::kBaseline, FastOptions());
  const ExperimentResult thp =
      RunWorkload(FastProfile(), Config::kThp, FastOptions());
  const NormalizedResult n = Normalize(thp, base);
  EXPECT_GT(n.performance, 1.0);        // faster (TLB gain)
  EXPECT_LT(n.memory_efficiency, 1.0);  // bloated (sparse cold blocks)
}

TEST(ExperimentTest, PrclSavesMemory) {
  const ExperimentResult base =
      RunWorkload(FastProfile(), Config::kBaseline, FastOptions());
  const ExperimentResult prcl =
      RunWorkload(FastProfile(), Config::kPrcl, FastOptions());
  const NormalizedResult n = Normalize(prcl, base);
  EXPECT_GT(n.memory_efficiency, 1.2);  // the 50 % cold tail gets evicted
  EXPECT_GT(n.performance, 0.7);        // without catastrophic slowdown
  ASSERT_EQ(prcl.scheme_stats.size(), 1u);
  EXPECT_GT(prcl.scheme_stats[0].sz_applied, 16 * MiB);
}

TEST(ExperimentTest, EthpKeepsGainDropsBloat) {
  const ExperimentOptions opt = FastOptions();
  const ExperimentResult base =
      RunWorkload(FastProfile(), Config::kBaseline, opt);
  const ExperimentResult thp = RunWorkload(FastProfile(), Config::kThp, opt);
  const ExperimentResult ethp = RunWorkload(FastProfile(), Config::kEthp, opt);
  const NormalizedResult nthp = Normalize(thp, base);
  const NormalizedResult nethp = Normalize(ethp, base);
  // ethp keeps part of the speedup...
  EXPECT_GT(nethp.performance, 1.0);
  // ...with clearly less memory bloat than full THP.
  EXPECT_GT(nethp.memory_efficiency, nthp.memory_efficiency);
}

TEST(ExperimentTest, CustomSchemesInstalled) {
  const auto schemes = PrclSchemes(2 * kUsPerSec);
  const ExperimentResult r = RunWorkload(FastProfile(), Config::kSchemes,
                                         FastOptions(), &schemes);
  ASSERT_EQ(r.scheme_stats.size(), 1u);
  EXPECT_GT(r.scheme_stats[0].nr_applied, 0u);
}

TEST(ExperimentTest, RecorderCapturesPattern) {
  damon::Recorder recorder;
  const ExperimentResult r = RunWorkload(FastProfile(), Config::kRec,
                                         FastOptions(), nullptr, &recorder);
  EXPECT_TRUE(r.finished);
  EXPECT_GT(recorder.snapshots().size(), 10u);
}

TEST(ExperimentTest, DeterministicWithoutNoise) {
  const ExperimentResult a =
      RunWorkload(FastProfile(), Config::kPrcl, FastOptions());
  const ExperimentResult b =
      RunWorkload(FastProfile(), Config::kPrcl, FastOptions());
  EXPECT_DOUBLE_EQ(a.runtime_s, b.runtime_s);
  EXPECT_DOUBLE_EQ(a.avg_rss_bytes, b.avg_rss_bytes);
}

TEST(ExperimentTest, NoiseVariesWithSeed) {
  workload::WorkloadProfile noisy = FastProfile();
  noisy.noise = 0.05;
  ExperimentOptions opt = FastOptions();
  opt.apply_runtime_noise = true;
  opt.seed = 1;
  const ExperimentResult a = RunWorkload(noisy, Config::kBaseline, opt);
  opt.seed = 2;
  const ExperimentResult b = RunWorkload(noisy, Config::kBaseline, opt);
  EXPECT_NE(a.runtime_s, b.runtime_s);
}

TEST(ExperimentTest, FasterMachineShorterRuntime) {
  ExperimentOptions i3 = FastOptions();
  ExperimentOptions z1d = FastOptions();
  z1d.host = sim::MachineSpec::Z1dMetal();
  const ExperimentResult a = RunWorkload(FastProfile(), Config::kBaseline, i3);
  const ExperimentResult b =
      RunWorkload(FastProfile(), Config::kBaseline, z1d);
  EXPECT_LT(b.runtime_s, a.runtime_s);
}

TEST(ExperimentTest, ConfigNamesMatchPaper) {
  EXPECT_EQ(ConfigName(Config::kBaseline), "baseline");
  EXPECT_EQ(ConfigName(Config::kRec), "rec");
  EXPECT_EQ(ConfigName(Config::kPrec), "prec");
  EXPECT_EQ(ConfigName(Config::kThp), "thp");
  EXPECT_EQ(ConfigName(Config::kEthp), "ethp");
  EXPECT_EQ(ConfigName(Config::kPrcl), "prcl");
}

TEST(ExperimentTest, ListingSchemesMatchPaper) {
  const auto ethp = EthpSchemes();
  ASSERT_EQ(ethp.size(), 2u);
  EXPECT_EQ(ethp[0].action(), damon::DamosAction::kHugepage);
  EXPECT_EQ(ethp[1].action(), damon::DamosAction::kNohugepage);
  const auto prcl = PrclSchemes();
  ASSERT_EQ(prcl.size(), 1u);
  EXPECT_EQ(prcl[0].bounds().min_age, 5 * kUsPerSec);
}

TEST(ReportTest, NormalizeBasics) {
  ExperimentResult base;
  base.runtime_s = 100;
  base.avg_rss_bytes = 1000;
  ExperimentResult run;
  run.runtime_s = 80;        // 25 % faster
  run.avg_rss_bytes = 2000;  // half the efficiency
  const NormalizedResult n = Normalize(run, base);
  EXPECT_DOUBLE_EQ(n.performance, 1.25);
  EXPECT_DOUBLE_EQ(n.memory_efficiency, 0.5);
}

TEST(ReportTest, FormatRowAligned) {
  const std::string row = FormatRow("workload", {1.0, 2.5}, 8, 2);
  EXPECT_NE(row.find("workload"), std::string::npos);
  EXPECT_NE(row.find("1.00"), std::string::npos);
  EXPECT_NE(row.find("2.50"), std::string::npos);
}

}  // namespace
}  // namespace daos::analysis
