#include "analysis/runner.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <vector>

namespace daos::analysis {
namespace {

/// Small grid workload: milliseconds per run, so the determinism matrix
/// (sequential vs 1 thread vs 8 threads) stays cheap.
workload::WorkloadProfile FastProfile() {
  workload::WorkloadProfile p;
  p.name = "test/runner";
  p.suite = "test";
  p.data_bytes = 128 * MiB;
  p.runtime_s = 10;
  p.noise = 0.0;
  p.thp_gain = 0.15;
  p.groups = {
      workload::GroupSpec{0.30, 0.0, 1.0, 0.3},
      workload::GroupSpec{0.20, 3.0, 1.0, 0.3},
      workload::GroupSpec{0.50, -1.0, 0.6, 0.2},
  };
  p.zipf_touches_per_s = 8000;
  return p;
}

std::vector<RunSpec> Grid() {
  std::vector<RunSpec> specs;
  for (const Config config :
       {Config::kBaseline, Config::kRec, Config::kEthp, Config::kPrcl}) {
    for (std::uint64_t seed = 1; seed <= 2; ++seed) {
      RunSpec spec;
      spec.profile = FastProfile();
      spec.config = config;
      spec.options.max_time = 120 * kUsPerSec;
      spec.options.apply_runtime_noise = false;
      spec.options.seed = seed;
      specs.push_back(spec);
    }
  }
  return specs;
}

void ExpectIdentical(const ExperimentResult& a, const ExperimentResult& b) {
  // Exact comparisons on purpose: a parallel run must be *bit*-identical
  // to a sequential one, not merely statistically close.
  EXPECT_EQ(a.workload, b.workload);
  EXPECT_EQ(a.config, b.config);
  EXPECT_EQ(a.runtime_s, b.runtime_s);
  EXPECT_EQ(a.finished, b.finished);
  EXPECT_EQ(a.avg_rss_bytes, b.avg_rss_bytes);
  EXPECT_EQ(a.peak_rss_bytes, b.peak_rss_bytes);
  EXPECT_EQ(a.major_faults, b.major_faults);
  EXPECT_EQ(a.monitor_cpu_fraction, b.monitor_cpu_fraction);
  EXPECT_EQ(a.interference_s, b.interference_s);
  ASSERT_EQ(a.scheme_stats.size(), b.scheme_stats.size());
  for (std::size_t i = 0; i < a.scheme_stats.size(); ++i) {
    EXPECT_EQ(a.scheme_stats[i].nr_tried, b.scheme_stats[i].nr_tried);
    EXPECT_EQ(a.scheme_stats[i].sz_tried, b.scheme_stats[i].sz_tried);
    EXPECT_EQ(a.scheme_stats[i].nr_applied, b.scheme_stats[i].nr_applied);
    EXPECT_EQ(a.scheme_stats[i].sz_applied, b.scheme_stats[i].sz_applied);
    EXPECT_EQ(a.scheme_stats[i].qt_exceeds, b.scheme_stats[i].qt_exceeds);
  }
  ASSERT_EQ(a.telemetry.samples().size(), b.telemetry.samples().size());
  for (std::size_t i = 0; i < a.telemetry.samples().size(); ++i) {
    const auto& sa = a.telemetry.samples()[i];
    const auto& sb = b.telemetry.samples()[i];
    EXPECT_EQ(sa.name, sb.name);
    EXPECT_EQ(sa.value, sb.value) << sa.name;
    EXPECT_EQ(sa.count, sb.count) << sa.name;
    EXPECT_EQ(sa.buckets, sb.buckets) << sa.name;
  }
}

TEST(ParallelRunnerTest, JobsFromEnvParsesDaosJobs) {
  ASSERT_EQ(setenv("DAOS_JOBS", "3", 1), 0);
  EXPECT_EQ(ParallelRunner::JobsFromEnv(), 3u);
  EXPECT_EQ(ParallelRunner(0).jobs(), 3u);
  ASSERT_EQ(setenv("DAOS_JOBS", "not-a-number", 1), 0);
  EXPECT_GE(ParallelRunner::JobsFromEnv(), 1u);  // falls back to hardware
  ASSERT_EQ(unsetenv("DAOS_JOBS"), 0);
  EXPECT_GE(ParallelRunner::JobsFromEnv(), 1u);
}

TEST(ParallelRunnerTest, ResultsComeBackInSubmissionOrder) {
  const std::vector<RunSpec> specs = Grid();
  const auto results = ParallelRunner(4).Run(specs);
  ASSERT_EQ(results.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(results[i].workload, specs[i].profile.name);
    EXPECT_EQ(results[i].config, specs[i].config);
  }
}

TEST(ParallelRunnerTest, ParallelGridMatchesSequentialBitForBit) {
  const std::vector<RunSpec> specs = Grid();

  // Reference: plain sequential RunWorkload calls, no runner involved.
  std::vector<ExperimentResult> sequential;
  for (const RunSpec& spec : specs) {
    sequential.push_back(
        RunWorkload(spec.profile, spec.config, spec.options,
                    spec.schemes.has_value() ? &*spec.schemes : nullptr,
                    spec.recorder));
  }

  const auto one = ParallelRunner(1).Run(specs);
  const auto eight = ParallelRunner(8).Run(specs);
  ASSERT_EQ(one.size(), specs.size());
  ASSERT_EQ(eight.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    ExpectIdentical(sequential[i], one[i]);
    ExpectIdentical(one[i], eight[i]);
  }
}

TEST(ParallelRunnerTest, ForEachVisitsEveryIndexOnce) {
  constexpr std::size_t kN = 100;
  std::vector<std::atomic<int>> visits(kN);
  ParallelRunner(8).ForEach(kN, [&](std::size_t i) { visits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(visits[i].load(), 1) << i;
}

TEST(ParallelRunnerTest, ForEachPropagatesExceptions) {
  EXPECT_THROW(ParallelRunner(4).ForEach(
                   16,
                   [](std::size_t i) {
                     if (i == 7) throw std::runtime_error("boom");
                   }),
               std::runtime_error);
}

TEST(ParallelRunnerTest, SequentialFastPathHandlesEmptyAndSingle) {
  EXPECT_TRUE(ParallelRunner(4).Run({}).empty());
  std::size_t calls = 0;
  ParallelRunner(1).ForEach(1, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 1u);
}

}  // namespace
}  // namespace daos::analysis
