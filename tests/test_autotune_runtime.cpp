#include "autotune/runtime.hpp"

#include <gtest/gtest.h>

#include "workload/generator.hpp"
#include "workload/profile.hpp"

namespace daos::autotune {
namespace {

workload::WorkloadProfile FastProfile() {
  workload::WorkloadProfile p;
  p.name = "test/runtime";
  p.suite = "test";
  p.data_bytes = 96 * MiB;
  p.runtime_s = 12;
  p.noise = 0;
  p.groups = {workload::GroupSpec{0.25, 0.0, 1.0, 0.3},
              workload::GroupSpec{0.75, -1.0, 1.0, 0.2}};
  return p;
}

EnvFactory MakeFactory(int* boots = nullptr) {
  return [boots]() {
    auto env = std::make_unique<TrialEnv>();
    env->system = std::make_unique<sim::System>(
        sim::MachineSpec::I3Metal().GuestOf(), sim::SwapConfig::Zram(),
        sim::ThpMode::kNever, 5 * kUsPerMs);
    const workload::WorkloadProfile p = FastProfile();
    sim::Process& proc = env->system->AddProcess(
        workload::ToProcessParams(p), workload::MakeSource(p, 31));
    env->workload_pid = proc.pid();
    env->damon =
        std::make_unique<dbgfs::DamonDbgfs>(env->system.get(), &env->fs);
    env->proc =
        std::make_unique<dbgfs::ProcFs>(env->system.get(), &env->fs);
    if (boots != nullptr) ++*boots;
    return env;
  };
}

TunerConfig Config() {
  TunerConfig cfg;
  cfg.nr_samples = 5;
  cfg.min_age_lo = 0;
  cfg.min_age_hi = 8 * kUsPerSec;
  cfg.seed = 3;
  return cfg;
}

TEST(DbgfsRuntimeTest, BaselineTrialMeasuresWorkload) {
  DbgfsRuntime runtime(MakeFactory(), Config());
  const TrialMeasurement m = runtime.RunOnce(nullptr);
  EXPECT_NEAR(m.runtime_s, 12.0, 1.5);
  // RSS ~ 25% hot + 75% cold of 96 MiB + aux/stack.
  EXPECT_GT(m.rss_bytes, 80.0 * MiB);
  EXPECT_EQ(runtime.trials(), 1);
}

TEST(DbgfsRuntimeTest, SchemeTrialTrimsMemory) {
  DbgfsRuntime runtime(MakeFactory(), Config());
  const TrialMeasurement base = runtime.RunOnce(nullptr);
  const damos::Scheme prcl = damos::Scheme::Prcl(2 * kUsPerSec);
  const TrialMeasurement trimmed = runtime.RunOnce(&prcl);
  // The cold 75 % gets paged out through the debugfs-installed scheme.
  EXPECT_LT(trimmed.rss_bytes, 0.6 * base.rss_bytes);
  EXPECT_LT(trimmed.runtime_s, base.runtime_s * 1.1);
}

TEST(DbgfsRuntimeTest, EveryTrialBootsFreshEnvironment) {
  int boots = 0;
  DbgfsRuntime runtime(MakeFactory(&boots), Config());
  runtime.RunOnce(nullptr);
  const damos::Scheme prcl = damos::Scheme::Prcl(2 * kUsPerSec);
  runtime.RunOnce(&prcl);
  runtime.RunOnce(&prcl);
  EXPECT_EQ(boots, 3);
  EXPECT_EQ(runtime.trials(), 3);
}

TEST(DbgfsRuntimeTest, TuneRunsBudgetPlusBaseline) {
  int boots = 0;
  DbgfsRuntime runtime(MakeFactory(&boots), Config());
  const TunerResult result = runtime.Tune(damos::Scheme::Prcl());
  EXPECT_EQ(boots, 6);  // 1 baseline + 5 samples
  EXPECT_EQ(result.samples.size(), 5u);
  // The tuned scheme keeps the prcl shape.
  EXPECT_EQ(result.tuned.action(), damon::DamosAction::kPageout);
  // On a cold-heavy workload every aggressiveness helps; the tuned scheme
  // must land on a positive predicted score.
  EXPECT_GT(result.predicted_score, 0.0);
}

TEST(DbgfsRuntimeTest, TunedSchemeVerifiesEndToEnd) {
  DbgfsRuntime runtime(MakeFactory(), Config());
  const TunerResult result = runtime.Tune(damos::Scheme::Prcl());
  const TrialMeasurement verify = runtime.RunOnce(&result.tuned);
  EXPECT_LT(verify.rss_bytes, 0.8 * result.baseline.rss_bytes);
}

TEST(DbgfsRuntimeTest, WatchdogKillsHungTrialAndRetrySucceeds) {
  int boots = 0;
  DbgfsRuntime runtime(MakeFactory(&boots), Config(),
                       /*max_trial_time=*/20 * kUsPerSec,
                       /*rss_poll_interval=*/kUsPerSec,
                       /*max_trial_retries=*/1);
  fault::FaultPlane plane(7);
  plane.Point(fault::kTrialHang).Arm(fault::FaultSpec{0.0, 0, 1});
  runtime.SetFaultPlane(&plane);

  const TrialMeasurement m = runtime.RunOnce(nullptr);
  // First attempt hangs, rides out the deadline and is discarded; the
  // retry on a fresh environment measures normally.
  EXPECT_FALSE(m.failed);
  EXPECT_EQ(m.retries, 1);
  EXPECT_EQ(runtime.trials(), 2);
  EXPECT_EQ(boots, 2);
  EXPECT_NEAR(m.runtime_s, 12.0, 1.5);
}

TEST(DbgfsRuntimeTest, TuneTerminatesWhenEveryTrialHangs) {
  DbgfsRuntime runtime(MakeFactory(), Config(),
                       /*max_trial_time=*/15 * kUsPerSec,
                       /*rss_poll_interval=*/kUsPerSec,
                       /*max_trial_retries=*/1);
  fault::FaultPlane plane(7);
  plane.Point(fault::kTrialHang).Arm(fault::FaultSpec{0.0, 1, 0});
  runtime.SetFaultPlane(&plane);

  // Tune() must come back even though no trial ever measures: every trial
  // is watchdog-killed, retried its bounded once, and reported failed.
  const TunerResult result = runtime.Tune(damos::Scheme::Prcl());
  EXPECT_EQ(result.failed_trials, 6);   // baseline + 5 samples
  EXPECT_EQ(result.retried_trials, 6);  // one bounded retry each
  ASSERT_EQ(result.samples.size(), 5u);
  for (const TunerSample& s : result.samples) EXPECT_TRUE(s.failed);
  EXPECT_DOUBLE_EQ(result.predicted_score, 0.0);
  const TunerConfig cfg = Config();
  EXPECT_EQ(result.tuned.bounds().min_age,
            (cfg.min_age_lo + cfg.min_age_hi) / 2);
}

}  // namespace
}  // namespace daos::autotune
