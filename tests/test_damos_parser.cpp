#include "damos/parser.hpp"

#include <gtest/gtest.h>

namespace daos::damos {
namespace {

TEST(ParserTest, PaperListing1) {
  // Listing 1 verbatim (with its comments).
  const ParseResult r = ParseSchemes(
      "# size frequency age action\n"
      "# page out memory regions not accessed >= 2 minutes\n"
      "min max min min 2m max page_out\n"
      "\n"
      "# Use THP for >=2MiB regions having >=80% frequency for >=1 minute\n"
      "2MB max 80% max 1m max thp\n"
      "\n"
      "# Do not use THP for regions having <=5% frequency for >=1 minute\n"
      "min max min 5% 1m max nothp\n");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.schemes.size(), 3u);

  const SchemeBounds& prcl = r.schemes[0].bounds();
  EXPECT_EQ(prcl.min_size, 0u);
  EXPECT_EQ(prcl.max_size, kMaxU64);
  EXPECT_DOUBLE_EQ(prcl.max_freq.value, 0.0);
  EXPECT_EQ(prcl.min_age, 2 * kUsPerMin);
  EXPECT_EQ(prcl.action, damon::DamosAction::kPageout);

  const SchemeBounds& thp = r.schemes[1].bounds();
  EXPECT_EQ(thp.min_size, 2 * MiB);
  EXPECT_DOUBLE_EQ(thp.min_freq.value, 0.8);
  EXPECT_EQ(thp.min_age, kUsPerMin);
  EXPECT_EQ(thp.action, damon::DamosAction::kHugepage);

  const SchemeBounds& nothp = r.schemes[2].bounds();
  EXPECT_DOUBLE_EQ(nothp.max_freq.value, 0.05);
  EXPECT_EQ(nothp.action, damon::DamosAction::kNohugepage);
}

TEST(ParserTest, PaperListing3) {
  const ParseResult r = ParseSchemes(
      "# size frequency age action\n"
      "min max 5 max min max hugepage\n"
      "2M max min min 7s max nohugepage\n"
      "\n"
      "4K max min min 5s max pageout\n");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.schemes.size(), 3u);

  // Bare "5" is a raw per-aggregation sample count.
  EXPECT_EQ(r.schemes[0].bounds().min_freq.unit, FreqBound::Unit::kSamples);
  EXPECT_DOUBLE_EQ(r.schemes[0].bounds().min_freq.value, 5.0);

  EXPECT_EQ(r.schemes[1].bounds().min_size, 2 * MiB);
  EXPECT_EQ(r.schemes[1].bounds().min_age, 7 * kUsPerSec);

  EXPECT_EQ(r.schemes[2].bounds().min_size, 4 * KiB);
  EXPECT_EQ(r.schemes[2].bounds().min_age, 5 * kUsPerSec);
  EXPECT_EQ(r.schemes[2].bounds().action, damon::DamosAction::kPageout);
}

TEST(ParserTest, ActionAliases) {
  damon::DamosAction a;
  EXPECT_TRUE(ParseAction("pageout", &a));
  EXPECT_EQ(a, damon::DamosAction::kPageout);
  EXPECT_TRUE(ParseAction("page_out", &a));
  EXPECT_EQ(a, damon::DamosAction::kPageout);
  EXPECT_TRUE(ParseAction("thp", &a));
  EXPECT_EQ(a, damon::DamosAction::kHugepage);
  EXPECT_TRUE(ParseAction("NOTHP", &a));
  EXPECT_EQ(a, damon::DamosAction::kNohugepage);
  EXPECT_TRUE(ParseAction("willneed", &a));
  EXPECT_TRUE(ParseAction("cold", &a));
  EXPECT_TRUE(ParseAction("stat", &a));
  EXPECT_FALSE(ParseAction("explode", &a));
}

TEST(ParserTest, WrongFieldCount) {
  const ParseResult r = ParseSchemeLine("min max min min 2m pageout");
  EXPECT_FALSE(r.ok());
  ASSERT_EQ(r.errors.size(), 1u);
  EXPECT_NE(r.errors[0].message.find("7 fields"), std::string::npos);
}

TEST(ParserTest, BadTokensReportedIndividually) {
  const ParseResult r = ParseSchemeLine("bogus max nope max soon max pageout");
  EXPECT_FALSE(r.ok());
  EXPECT_GE(r.errors.size(), 3u);
}

TEST(ParserTest, ErrorCarriesLineNumber) {
  const ParseResult r = ParseSchemes(
      "min max min min 2m max pageout\n"
      "min max min min 2m max frobnicate\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.errors[0].line_number, 2);
  // The good line still parsed.
  EXPECT_EQ(r.schemes.size(), 1u);
}

TEST(ParserTest, MinSizeAboveMaxRejected) {
  const ParseResult r = ParseSchemeLine("8M 2M min max min max pageout");
  EXPECT_FALSE(r.ok());
}

TEST(ParserTest, EmptyInputYieldsNothing) {
  const ParseResult r = ParseSchemes("\n# only comments\n\n");
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.schemes.empty());
}

TEST(ParserTest, RoundTripThroughToText) {
  const char* lines[] = {
      "min max min min 2m max pageout",
      "2.0M max 80% max 1m max hugepage",
      "4.0K max min min 5s max pageout",
      "min max min 5% 1m max nohugepage",
  };
  for (const char* line : lines) {
    const ParseResult first = ParseSchemeLine(line);
    ASSERT_TRUE(first.ok()) << line;
    const std::string text = first.schemes[0].ToText();
    const ParseResult second = ParseSchemeLine(text);
    ASSERT_TRUE(second.ok()) << text;
    EXPECT_EQ(second.schemes[0].ToText(), text);
  }
}

// Property: parsing arbitrary valid combinations succeeds and preserves the
// action.
struct ActionCase {
  const char* token;
  damon::DamosAction action;
};

class ParserActionTest : public ::testing::TestWithParam<ActionCase> {};

TEST_P(ParserActionTest, ParsesEveryAction) {
  const ActionCase& c = GetParam();
  const std::string line = std::string("min max min max min max ") + c.token;
  const ParseResult r = ParseSchemeLine(line);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.schemes[0].action(), c.action);
}

INSTANTIATE_TEST_SUITE_P(
    Actions, ParserActionTest,
    ::testing::Values(ActionCase{"pageout", damon::DamosAction::kPageout},
                      ActionCase{"hugepage", damon::DamosAction::kHugepage},
                      ActionCase{"nohugepage",
                                 damon::DamosAction::kNohugepage},
                      ActionCase{"willneed", damon::DamosAction::kWillneed},
                      ActionCase{"cold", damon::DamosAction::kCold},
                      ActionCase{"stat", damon::DamosAction::kStat}));

}  // namespace
}  // namespace daos::damos
