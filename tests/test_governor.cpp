// Unit tests for the DAMOS governor library: policy grammar round-trips,
// quota window arithmetic, the modelled action cost table, priority
// scoring, and the watermark activation machine.
#include <gtest/gtest.h>

#include "governor/governor.hpp"
#include "governor/policy.hpp"
#include "governor/priority.hpp"
#include "governor/quota.hpp"
#include "sim/machine.hpp"
#include "util/units.hpp"

namespace daos::governor {
namespace {

GovernorPolicy ParseClauses(std::initializer_list<const char*> clauses) {
  GovernorPolicy policy;
  for (const char* clause : clauses) {
    std::string error;
    EXPECT_TRUE(ParsePolicyClause(clause, &policy, &error))
        << clause << ": " << error;
  }
  return policy;
}

// --- policy grammar -------------------------------------------------------

TEST(GovernorPolicyTest, DisarmedByDefaultAndSerializesEmpty) {
  const GovernorPolicy policy;
  EXPECT_FALSE(policy.armed());
  EXPECT_EQ(policy.ToText(), "");
}

TEST(GovernorPolicyTest, ClausesParse) {
  const GovernorPolicy policy = ParseClauses(
      {"quota_sz=16M", "quota_ms=5", "quota_reset_ms=2000",
       "prio_weights=1,7,2", "wmarks=free_mem_rate,900,500,100",
       "wmark_interval_ms=250"});
  EXPECT_EQ(policy.quota.sz_bytes, 16 * MiB);
  EXPECT_EQ(policy.quota.time_us, 5 * kUsPerMs);
  EXPECT_EQ(policy.quota.reset_interval, 2 * kUsPerSec);
  EXPECT_EQ(policy.prio.sz, 1u);
  EXPECT_EQ(policy.prio.freq, 7u);
  EXPECT_EQ(policy.prio.age, 2u);
  EXPECT_EQ(policy.wmarks.metric, WatermarkMetric::kFreeMemRate);
  EXPECT_EQ(policy.wmarks.high, 900u);
  EXPECT_EQ(policy.wmarks.mid, 500u);
  EXPECT_EQ(policy.wmarks.low, 100u);
  EXPECT_EQ(policy.wmarks.interval, 250 * kUsPerMs);
  EXPECT_TRUE(policy.armed());
}

TEST(GovernorPolicyTest, ToTextRoundTripsExactly) {
  const GovernorPolicy original = ParseClauses(
      {"quota_sz=3333337", "quota_ms=7", "quota_reset_ms=1500",
       "prio_weights=0,10,3", "wmarks=free_mem_rate,995,700,50"});
  // quota_sz is serialized in raw bytes, so even a non-round size (which
  // FormatSize would describe lossily) survives the trip bit-exactly.
  GovernorPolicy reparsed;
  std::string text = original.ToText();
  ASSERT_FALSE(text.empty());
  ASSERT_EQ(text[0], ' ');
  std::size_t at = 1;
  while (at < text.size()) {
    const std::size_t sp = text.find(' ', at);
    const std::string clause = text.substr(
        at, sp == std::string::npos ? std::string::npos : sp - at);
    std::string error;
    ASSERT_TRUE(ParsePolicyClause(clause, &reparsed, &error))
        << clause << ": " << error;
    if (sp == std::string::npos) break;
    at = sp + 1;
  }
  EXPECT_EQ(reparsed, original);
}

TEST(GovernorPolicyTest, ValidationRejectsDisorderedWatermarks) {
  GovernorPolicy policy =
      ParseClauses({"wmarks=free_mem_rate,100,500,900"});
  std::string error;
  EXPECT_FALSE(ValidatePolicy(policy, &error));
  EXPECT_NE(error.find("high >= mid >= low"), std::string::npos);
  policy = ParseClauses({"wmarks=free_mem_rate,900,500,100"});
  EXPECT_TRUE(ValidatePolicy(policy, &error));
}

// --- action cost model ----------------------------------------------------

TEST(GovernorCostTest, PerPageAndPerBlockActions) {
  const sim::CostModel costs;
  EXPECT_DOUBLE_EQ(ActionCostUs(costs, damon::DamosAction::kPageout, 4 * kPageSize),
                   4.0 * costs.damos_pageout_us_per_page);
  EXPECT_DOUBLE_EQ(ActionCostUs(costs, damon::DamosAction::kHugepage, 4 * MiB),
                   2.0 * costs.damos_hugepage_us_per_block);
  // Partial units are charged whole (ceil): half a page is one page.
  EXPECT_DOUBLE_EQ(ActionCostUs(costs, damon::DamosAction::kCold, 1),
                   costs.damos_cold_us_per_page);
  EXPECT_DOUBLE_EQ(ActionCostUs(costs, damon::DamosAction::kStat, GiB), 0.0);
}

// --- quota window arithmetic ----------------------------------------------

TEST(GovernorQuotaTest, SizeBudgetChargesAndRolls) {
  QuotaSpec quota;
  quota.sz_bytes = 8 * MiB;
  quota.reset_interval = kUsPerSec;
  const sim::CostModel costs;
  QuotaState state;

  state.RollWindow(quota, damon::DamosAction::kPageout, costs, 0);
  EXPECT_EQ(state.remaining(), 8 * MiB);
  state.Charge(5 * MiB, damon::DamosAction::kPageout, costs);
  EXPECT_EQ(state.remaining(), 3 * MiB);
  state.Charge(5 * MiB, damon::DamosAction::kPageout, costs);
  EXPECT_EQ(state.remaining(), 0u);

  // Mid-window re-roll keeps the charge (backoff/watermark re-arm must not
  // refresh the budget)...
  state.RollWindow(quota, damon::DamosAction::kPageout, costs,
                   kUsPerSec / 2);
  EXPECT_EQ(state.remaining(), 0u);
  // ...and the window boundary resets the window but not the lifetime sums.
  state.RollWindow(quota, damon::DamosAction::kPageout, costs, kUsPerSec);
  EXPECT_EQ(state.remaining(), 8 * MiB);
  EXPECT_EQ(state.total_charged_sz, 10 * MiB);
}

TEST(GovernorQuotaTest, TimeBudgetConvertsThroughActionCost) {
  QuotaSpec quota;
  quota.time_us = 3000;  // 3 ms
  const sim::CostModel costs;  // pageout: 3 µs per page
  QuotaState state;
  state.RollWindow(quota, damon::DamosAction::kPageout, costs, 0);
  // 3000 µs / 3 µs-per-page = 1000 pages.
  EXPECT_EQ(state.remaining(), 1000 * kPageSize);
  // A stat scheme costs nothing, so a pure time quota cannot bound it.
  state.RollWindow(quota, damon::DamosAction::kStat, costs, kUsPerSec * 10);
  EXPECT_EQ(state.esz, kMaxU64);
}

TEST(GovernorQuotaTest, CombinedBudgetTakesTheMinimum) {
  QuotaSpec quota;
  quota.sz_bytes = 2 * MiB;
  quota.time_us = 3000;  // -> 1000 pages ≈ 3.9 M at 4K pages
  const sim::CostModel costs;
  QuotaState state;
  state.RollWindow(quota, damon::DamosAction::kPageout, costs, 0);
  EXPECT_EQ(state.esz, 2 * MiB);  // size is the tighter bound

  quota.sz_bytes = 16 * MiB;
  state.RollWindow(quota, damon::DamosAction::kPageout, costs, kUsPerSec);
  EXPECT_EQ(state.esz, 1000 * kPageSize);  // now time is
}

// --- prioritization -------------------------------------------------------

TEST(GovernorPriorityTest, ColdFirstFollowsActionShape) {
  EXPECT_TRUE(ColdFirst(damon::DamosAction::kPageout));
  EXPECT_TRUE(ColdFirst(damon::DamosAction::kCold));
  EXPECT_TRUE(ColdFirst(damon::DamosAction::kNohugepage));
  EXPECT_FALSE(ColdFirst(damon::DamosAction::kHugepage));
  EXPECT_FALSE(ColdFirst(damon::DamosAction::kWillneed));
}

TEST(GovernorPriorityTest, FrequencyInvertsForReclaim) {
  ScoreScale scale;
  scale.max_sz = MiB;
  scale.max_nr_accesses = 10;
  scale.max_age = 100;
  PrioWeights freq_only{0, 1, 0};

  RegionFacts hot{MiB, 10, 50};
  RegionFacts cold{MiB, 0, 50};
  // Promote-shaped: the hot region wins.
  EXPECT_GT(ScoreRegion(hot, scale, freq_only, false),
            ScoreRegion(cold, scale, freq_only, false));
  // Reclaim-shaped: the cold region wins.
  EXPECT_LT(ScoreRegion(hot, scale, freq_only, true),
            ScoreRegion(cold, scale, freq_only, true));
}

TEST(GovernorPriorityTest, DisarmedWeightsScoreMax) {
  EXPECT_EQ(ScoreRegion(RegionFacts{1, 1, 1}, ScoreScale{}, PrioWeights{},
                        false),
            kMaxScore);
}

TEST(GovernorPriorityTest, HistogramCutoffAdaptsToBudget) {
  PriorityHistogram h;
  h.Add(90, 4 * MiB);
  h.Add(50, 4 * MiB);
  h.Add(10, 4 * MiB);
  EXPECT_EQ(h.total_bytes(), 12 * MiB);
  // Budget covers everything: no cutoff.
  EXPECT_EQ(h.MinScoreFor(16 * MiB), 0u);
  // Budget covers only the top bucket.
  EXPECT_EQ(h.MinScoreFor(4 * MiB), 90u);
  // Budget covers the top two.
  EXPECT_EQ(h.MinScoreFor(8 * MiB), 50u);
}

// --- watermark machine ----------------------------------------------------

class GovernorWatermarkTest : public ::testing::Test {
 protected:
  GovernorWatermarkTest()
      : machine_(sim::MachineSpec{"wm", 4, 3.0, 1 * GiB},
                 sim::SwapConfig::Zram()) {
    governor_.BindMachine(&machine_);
    governor_.Reset(1);
    policy_ = [] {
      GovernorPolicy p;
      std::string error;
      ParsePolicyClause("wmarks=free_mem_rate,800,500,100", &p, &error);
      ParsePolicyClause("wmark_interval_ms=100", &p, &error);
      return p;
    }();
  }

  /// Sets DRAM usage so free_mem_rate reads `permille`.
  void SetFree(std::uint32_t permille) {
    machine_.UnchargeFrames(machine_.used_frames());
    const std::uint64_t frames = GiB / kPageSize;
    machine_.ChargeFrames(frames - frames * permille / 1000);
  }

  PassPlan Plan(SimTimeUs now) {
    return governor_.PlanPass(0, policy_, damon::DamosAction::kPageout, now);
  }

  sim::Machine machine_;
  Governor governor_;
  GovernorPolicy policy_;
};

TEST_F(GovernorWatermarkTest, DeactivatesAboveHighReactivatesAtMid) {
  SetFree(600);  // between mid and high: stays active (starts active)
  PassPlan plan = Plan(0);
  EXPECT_FALSE(plan.skip);
  EXPECT_TRUE(plan.wmark_active);

  SetFree(900);  // above high: system healthy, stand down
  plan = Plan(100 * kUsPerMs);
  EXPECT_TRUE(plan.skip);
  EXPECT_TRUE(plan.wmark_transition);
  EXPECT_FALSE(governor_.wmark_active(0));

  // Hysteresis: dipping back under high but above mid is NOT enough.
  SetFree(600);
  plan = Plan(200 * kUsPerMs);
  EXPECT_TRUE(plan.skip);
  EXPECT_FALSE(plan.wmark_transition);

  SetFree(400);  // at/below mid: re-arm
  plan = Plan(300 * kUsPerMs);
  EXPECT_FALSE(plan.skip);
  EXPECT_TRUE(plan.wmark_transition);
  EXPECT_TRUE(governor_.wmark_active(0));
}

TEST_F(GovernorWatermarkTest, DeactivatesBelowLow) {
  SetFree(50);  // emergency: below low, leave reclaim to the kernel
  const PassPlan plan = Plan(0);
  EXPECT_TRUE(plan.skip);
  EXPECT_FALSE(governor_.wmark_active(0));
}

TEST_F(GovernorWatermarkTest, ChecksOnlyAtIntervalBoundaries) {
  SetFree(600);
  Plan(0);  // schedules the next check at +100 ms
  SetFree(900);
  // Before the interval elapses the stale (active) state holds.
  EXPECT_FALSE(Plan(50 * kUsPerMs).skip);
  EXPECT_TRUE(Plan(100 * kUsPerMs).skip);
}

TEST_F(GovernorWatermarkTest, NoMachineFailsOpen) {
  Governor unbound;
  unbound.Reset(1);
  const PassPlan plan =
      unbound.PlanPass(0, policy_, damon::DamosAction::kPageout, 0);
  EXPECT_FALSE(plan.skip);
}

}  // namespace
}  // namespace daos::governor
