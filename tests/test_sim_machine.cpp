#include "sim/machine.hpp"

#include <gtest/gtest.h>

#include "sim/address_space.hpp"

namespace daos::sim {
namespace {

TEST(MachineSpecTest, Table2Values) {
  // Paper Table 2.
  const MachineSpec i3 = MachineSpec::I3Metal();
  EXPECT_EQ(i3.name, "i3.metal");
  EXPECT_EQ(i3.vcpus, 36);
  EXPECT_DOUBLE_EQ(i3.cpu_ghz, 3.0);
  EXPECT_EQ(i3.dram_bytes, 128 * GiB);

  const MachineSpec m5d = MachineSpec::M5dMetal();
  EXPECT_EQ(m5d.vcpus, 48);
  EXPECT_DOUBLE_EQ(m5d.cpu_ghz, 3.1);
  EXPECT_EQ(m5d.dram_bytes, 96 * GiB);

  const MachineSpec z1d = MachineSpec::Z1dMetal();
  EXPECT_EQ(z1d.vcpus, 24);
  EXPECT_DOUBLE_EQ(z1d.cpu_ghz, 4.0);
  EXPECT_EQ(z1d.dram_bytes, 96 * GiB);
}

TEST(MachineSpecTest, AllBareMetalListsThree) {
  EXPECT_EQ(MachineSpec::AllBareMetal().size(), 3u);
}

TEST(MachineSpecTest, GuestHalvesCpusQuartersDram) {
  // Paper §4: guests use half the CPUs and a quarter of the memory.
  const MachineSpec guest = MachineSpec::I3Metal().GuestOf();
  EXPECT_EQ(guest.vcpus, 18);
  EXPECT_EQ(guest.dram_bytes, 32 * GiB);
  EXPECT_DOUBLE_EQ(guest.cpu_ghz, 3.0);
}

TEST(MachineTest, CpuSpeedRelativeToReference) {
  Machine i3(MachineSpec::I3Metal(), SwapConfig::Zram());
  Machine z1d(MachineSpec::Z1dMetal(), SwapConfig::Zram());
  EXPECT_DOUBLE_EQ(i3.cpu_speed(), 1.0);
  EXPECT_NEAR(z1d.cpu_speed(), 4.0 / 3.0, 1e-12);
}

TEST(MachineTest, FrameAccounting) {
  Machine machine(MachineSpec{"t", 2, 3.0, GiB}, SwapConfig::Zram());
  machine.ChargeFrames(10);
  EXPECT_EQ(machine.used_frames(), 10u);
  machine.UnchargeFrames(3);
  EXPECT_EQ(machine.used_frames(), 7u);
  machine.UnchargeFrames(100);  // saturates, no underflow
  EXPECT_EQ(machine.used_frames(), 0u);
}

TEST(MachineTest, SpaceRegistry) {
  Machine machine(MachineSpec{"t", 2, 3.0, GiB}, SwapConfig::Zram());
  {
    AddressSpace a(1, &machine, 3.0);
    AddressSpace b(2, &machine, 3.0);
    EXPECT_EQ(machine.spaces().size(), 2u);
  }
  EXPECT_TRUE(machine.spaces().empty());
}

TEST(MachineTest, PressureThreshold) {
  Machine machine(MachineSpec{"t", 2, 3.0, 100 * MiB}, SwapConfig::None());
  EXPECT_FALSE(machine.UnderPressure());
  machine.ChargeFrames(90 * MiB / kPageSize);
  EXPECT_FALSE(machine.UnderPressure());  // 90 % < 92 % watermark
  machine.ChargeFrames(5 * MiB / kPageSize);
  EXPECT_TRUE(machine.UnderPressure());
}

TEST(MachineTest, CostModelSane) {
  Machine machine(MachineSpec::I3Metal(), SwapConfig::Zram());
  const CostModel& costs = machine.costs();
  EXPECT_GT(costs.minor_fault_us, 0.0);
  EXPECT_GT(costs.huge_fault_extra_us, costs.minor_fault_us);
  EXPECT_LT(costs.monitor_check_us, 1.0);  // sub-microsecond checks
  EXPECT_GT(costs.monitor_check_paddr_us, costs.monitor_check_us);
}

}  // namespace
}  // namespace daos::sim
