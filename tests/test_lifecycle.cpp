// Lifecycle supervisor tests (src/lifecycle): transactional commit,
// crash-restart determinism, crash-loop containment, and the two
// restart-semantics satellites (governor quota carry, recorder tail).
//
// Every rig here installs its *own* fault plane, replacing any env-armed
// one (DAOS_FAULTS), so the golden comparisons stay deterministic under
// the CI fault-stress job. The one exception, SurvivesEnvFaultInjection,
// deliberately keeps the env plane and only asserts invariants that hold
// under arbitrary daemon.crash injection.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "damon/primitives.hpp"
#include "fault/fault.hpp"
#include "lifecycle/checkpoint.hpp"
#include "lifecycle/supervisor.hpp"
#include "sim/address_space.hpp"
#include "sim/system.hpp"
#include "util/units.hpp"

namespace {

using namespace daos;

constexpr Addr kBase = 1 * GiB;
constexpr std::uint64_t kHeap = 64 * MiB;

lifecycle::SupervisorConfig FastCrashConfig() {
  lifecycle::SupervisorConfig config;
  config.checkpoint_interval = 500 * kUsPerMs;
  config.heartbeat_interval = 50 * kUsPerMs;
  config.heartbeat_timeout = 150 * kUsPerMs;
  config.restart_backoff = 50 * kUsPerMs;
  config.max_backoff_exp = 2;
  return config;
}

/// One supervised kdamond over an anonymous heap. The member order matters:
/// the plane outlives the system (SetFaultPlane contract) and the space
/// outlives the supervisor's primitives.
struct Rig {
  fault::FaultPlane plane;
  sim::System system;
  sim::AddressSpace space;
  lifecycle::KdamondSupervisor supervisor;

  explicit Rig(const lifecycle::SupervisorConfig& config = {},
               bool keep_env_plane = false)
      : system(sim::MachineSpec{"lc", 4, 3.0, 4 * GiB},
               sim::SwapConfig::Zram()),
        space(1, &system.machine(), 3.0),
        supervisor(config) {
    space.Map(kBase, kHeap, "heap");
    sim::AddressSpace* heap = &space;
    supervisor.SetTargetFactory([heap](damon::DamonContext& ctx) {
      ctx.AddTarget(std::make_unique<damon::VaddrPrimitives>(heap));
    });
    supervisor.AttachTo(system);
    if (!keep_env_plane) system.SetFaultPlane(&plane);
  }

  void InstallOrDie(const char* schemes) {
    std::string error;
    ASSERT_TRUE(supervisor.InstallSchemesFromText(schemes, &error)) << error;
  }

  lifecycle::Checkpoint Snapshot() {
    return lifecycle::CaptureCheckpoint(supervisor.context(),
                                        supervisor.engine(), nullptr,
                                        system.Now());
  }
};

int MaxRegionAge(const lifecycle::Checkpoint& cp) {
  int max_age = 0;
  for (const lifecycle::CheckpointTarget& t : cp.targets)
    for (const damon::Region& r : t.regions)
      if (r.age > max_age) max_age = r.age;
  return max_age;
}

TEST(LifecycleCommitTest, AppliesAtWindowBoundaryAndCarriesState) {
  Rig rig;
  rig.space.TouchRange(kBase, kBase + kHeap, true, 0);
  rig.InstallOrDie("min max min min min max stat");
  rig.system.Run(2 * kUsPerSec);

  const std::uint64_t tried_before =
      rig.supervisor.engine().schemes()[0].stats().nr_tried;
  ASSERT_GT(tried_before, 0u);

  // Same scheme bounds, new quota clause, doubled aggregation interval.
  ASSERT_TRUE(rig.supervisor.CommitFromText(
      "attrs 5000 200000 1000000 10 1000\n"
      "scheme min max min min min max stat quota_sz=16M\n",
      nullptr));
  EXPECT_TRUE(rig.supervisor.commit_pending());
  EXPECT_EQ(rig.supervisor.state(), lifecycle::SupervisorState::kDraining);
  EXPECT_EQ(rig.supervisor.last_commit_result(), "staged");

  // One old-size window is enough to reach the boundary where it applies.
  rig.system.Run(200 * kUsPerMs);
  EXPECT_FALSE(rig.supervisor.commit_pending());
  EXPECT_EQ(rig.supervisor.state(), lifecycle::SupervisorState::kRunning);
  EXPECT_EQ(rig.supervisor.counters().commits, 1u);
  EXPECT_NE(rig.supervisor.last_commit_result().find("committed: 1 carried"),
            std::string::npos)
      << rig.supervisor.last_commit_result();
  EXPECT_EQ(rig.supervisor.context().attrs().aggregation_interval,
            200 * kUsPerMs);

  // Carried by bounds identity: stats survived, and so did the regions'
  // learned ages (a cold re-install would have reset both to zero).
  EXPECT_GE(rig.supervisor.engine().schemes()[0].stats().nr_tried,
            tried_before);
  EXPECT_GE(MaxRegionAge(rig.Snapshot()), 5);
  // The monitor itself was never rebuilt: its window count kept going.
  EXPECT_GE(rig.supervisor.context().counters().aggregations, 20u);
}

TEST(LifecycleCommitTest, RejectedBundleLeavesStateBitIdentical) {
  Rig rig;
  rig.space.TouchRange(kBase, kBase + kHeap, true, 0);
  rig.InstallOrDie("min max min min 1s max pageout quota_sz=8M");
  rig.system.Run(2 * kUsPerSec);

  const std::string before = rig.supervisor.CaptureCheckpointText();

  std::string error;
  EXPECT_FALSE(rig.supervisor.CommitFromText(
      "attrs 5000 1000 1000000 10 1000\n", &error));
  EXPECT_NE(error.find("aggregation interval below sampling"),
            std::string::npos)
      << error;
  EXPECT_FALSE(rig.supervisor.CommitFromText(
      "scheme min max min min min max frobnicate\n", &error));

  EXPECT_FALSE(rig.supervisor.commit_pending());
  EXPECT_EQ(rig.supervisor.state(), lifecycle::SupervisorState::kRunning);
  EXPECT_EQ(rig.supervisor.counters().commits, 0u);
  EXPECT_EQ(rig.supervisor.counters().rollbacks, 2u);
  EXPECT_NE(rig.supervisor.last_commit_result().find("rejected"),
            std::string::npos);

  // The acceptance bar: a rejected bundle changes *nothing*. The full
  // serialized stack state — regions, rng, deadlines, stats, governor
  // charges, recorder tail — is byte-identical.
  EXPECT_EQ(before, rig.supervisor.CaptureCheckpointText());
}

TEST(LifecycleCrashTest, RestartFromCheckpointMatchesUninterruptedRun) {
  // Identical idle-heap rigs; the crashy one loses its kdamond at ~1.7s,
  // between the 1.5s periodic checkpoint and the 2.0s window. Detection
  // (stale heartbeat) plus backoff restarts it around 2.0s; the restored
  // deadlines then replay the lost windows. Over never-touched memory the
  // replay observes the exact access pattern (none) the golden run saw
  // live, so the monitoring state reconverges bit-identically.
  lifecycle::SupervisorConfig config = FastCrashConfig();
  Rig golden(config);
  Rig crashy(config);
  golden.InstallOrDie("min max min min min max stat");
  crashy.InstallOrDie("min max min min min max stat");

  fault::FaultSpec crash;
  crash.once_at = 1700;  // checks happen once per live 1ms quantum
  crashy.plane.Arm(fault::kDaemonCrash, crash);

  golden.system.Run(4 * kUsPerSec);
  crashy.system.Run(4 * kUsPerSec);

  EXPECT_EQ(golden.supervisor.counters().crashes, 0u);
  EXPECT_EQ(crashy.supervisor.counters().crashes, 1u);
  EXPECT_EQ(crashy.supervisor.counters().restores, 1u);
  EXPECT_EQ(crashy.supervisor.counters().cold_restarts, 0u);
  EXPECT_TRUE(crashy.supervisor.alive());
  EXPECT_EQ(crashy.supervisor.state(), lifecycle::SupervisorState::kRunning);

  // Bit-identical reconvergence, recorder timestamps included: the replay
  // services the lost sample deadlines at their virtual times, so even the
  // snapshot history is indistinguishable from the uninterrupted run.
  EXPECT_EQ(golden.supervisor.CaptureCheckpointText(),
            crashy.supervisor.CaptureCheckpointText());
}

TEST(LifecycleCrashTest, NoCheckpointMeansColdRestart) {
  lifecycle::SupervisorConfig config = FastCrashConfig();
  config.checkpoint_interval = 0;  // periodic capture disabled
  Rig rig(config);
  rig.InstallOrDie("min max min min min max stat");

  fault::FaultSpec crash;
  crash.once_at = 1000;
  rig.plane.Arm(fault::kDaemonCrash, crash);

  rig.system.Run(3 * kUsPerSec);
  EXPECT_EQ(rig.supervisor.counters().crashes, 1u);
  EXPECT_EQ(rig.supervisor.counters().restores, 0u);
  EXPECT_EQ(rig.supervisor.counters().cold_restarts, 1u);
  EXPECT_TRUE(rig.supervisor.alive());
  // The configuration survives a checkpointless crash even though the
  // learned state does not: the scheme set is back, but the monitor only
  // has the windows since the ~1.2s restart, not the full run's ~29.
  ASSERT_EQ(rig.supervisor.engine().schemes().size(), 1u);
  EXPECT_GT(rig.supervisor.engine().schemes()[0].stats().nr_tried, 0u);
  EXPECT_GE(rig.supervisor.context().counters().aggregations, 10u);
  EXPECT_LE(rig.supervisor.context().counters().aggregations, 20u);
}

TEST(LifecycleCrashTest, CrashLoopEntersDegradedThenQuietWindowRearms) {
  lifecycle::SupervisorConfig config = FastCrashConfig();
  config.restart_budget = 2;
  config.restart_budget_window = 3 * kUsPerSec;
  Rig rig(config);
  rig.space.TouchRange(kBase, kBase + kHeap, true, 0);
  rig.InstallOrDie("min max min min min max stat");

  // Every check fires: each restart dies on its first step back.
  fault::FaultSpec crash;
  crash.every_nth = 1;
  rig.plane.Arm(fault::kDaemonCrash, crash);

  rig.system.Run(6 * kUsPerSec);
  EXPECT_GE(rig.supervisor.counters().crashes, 3u);
  EXPECT_GE(rig.supervisor.counters().degraded_entries, 1u);
  EXPECT_TRUE(rig.supervisor.engine().disarmed());

  // Quiet: faults stop, the budget window drains, schemes are re-armed.
  rig.plane.DisarmAll();
  rig.system.Run(6 * kUsPerSec);
  EXPECT_TRUE(rig.supervisor.alive());
  EXPECT_EQ(rig.supervisor.state(), lifecycle::SupervisorState::kRunning);
  EXPECT_FALSE(rig.supervisor.engine().disarmed());
}

TEST(LifecycleRestoreTest, GovernorQuotaChargeSurvivesRestore) {
  // The anti-laundering satellite: a crash/restore cycle must not refill
  // the quota window. The reset interval is far longer than the run so the
  // whole pageout budget lives in one window.
  Rig rig;
  rig.space.TouchRange(kBase, kBase + kHeap, true, 0);
  rig.InstallOrDie(
      "min max min min 1s max pageout quota_sz=2M quota_reset_ms=60000");
  rig.system.Run(4 * kUsPerSec);

  const governor::QuotaState before =
      rig.supervisor.engine().governor().quota_state(0);
  ASSERT_GT(before.charged_sz, 0u);

  const std::string text = rig.supervisor.CaptureCheckpointText();
  std::string error;
  ASSERT_TRUE(rig.supervisor.RestoreFromText(text, &error)) << error;

  const governor::QuotaState after =
      rig.supervisor.engine().governor().quota_state(0);
  EXPECT_EQ(after.charged_sz, before.charged_sz);
  EXPECT_EQ(after.window_start, before.window_start);
  EXPECT_EQ(after.total_charged_sz, before.total_charged_sz);

  // The restored window keeps honoring the cap.
  rig.system.Run(2 * kUsPerSec);
  EXPECT_LE(rig.supervisor.engine().governor().quota_state(0).charged_sz,
            2 * MiB);
}

TEST(LifecycleRestoreTest, RecorderTailSurvivesRestore) {
  // Regression for the Recorder::Clear() restart bug: rebuilding the stack
  // used to truncate the snapshot history feeding analysis/heatmap. The
  // restore path must re-install the tail and keep appending after it.
  Rig rig;
  rig.space.TouchRange(kBase, kBase + kHeap, true, 0);
  rig.InstallOrDie("min max min min min max stat");
  rig.system.Run(3 * kUsPerSec);

  const std::size_t count_before = rig.supervisor.recorder().snapshots().size();
  ASSERT_GT(count_before, 2u);
  const SimTimeUs first_at = rig.supervisor.recorder().snapshots().front().at;
  const SimTimeUs last_at = rig.supervisor.recorder().snapshots().back().at;

  const std::string text = rig.supervisor.CaptureCheckpointText();
  std::string error;
  ASSERT_TRUE(rig.supervisor.RestoreFromText(text, &error)) << error;

  const auto& restored = rig.supervisor.recorder().snapshots();
  ASSERT_EQ(restored.size(), count_before);
  EXPECT_EQ(restored.front().at, first_at);
  EXPECT_EQ(restored.back().at, last_at);

  rig.system.Run(1 * kUsPerSec);
  const auto& grown = rig.supervisor.recorder().snapshots();
  ASSERT_GT(grown.size(), count_before);
  // Appended, not restarted: times stay monotonic across the restore.
  EXPECT_GT(grown[count_before].at, last_at);
}

TEST(LifecycleStateTest, StateTextReportsTheMachine) {
  Rig rig;
  rig.InstallOrDie("min max min min min max stat");
  rig.system.Run(1 * kUsPerSec);
  const std::string text = rig.supervisor.StateText();
  EXPECT_NE(text.find("state running\n"), std::string::npos) << text;
  EXPECT_NE(text.find("alive 1\n"), std::string::npos);
  EXPECT_NE(text.find("commit_pending 0\n"), std::string::npos);
  EXPECT_NE(text.find("restart_budget 0/3\n"), std::string::npos);
}

TEST(LifecycleStressTest, SurvivesEnvFaultInjection) {
  // Runs under whatever DAOS_FAULTS arms (the CI crash-restart step sets
  // daemon.crash at mid probability); with nothing armed it is a plain
  // smoke test. Only injection-invariant facts are asserted.
  lifecycle::SupervisorConfig config = FastCrashConfig();
  Rig rig(config, /*keep_env_plane=*/true);
  rig.space.TouchRange(kBase, kBase + kHeap, true, 0);
  rig.InstallOrDie("min max min min min max stat");
  rig.system.Run(10 * kUsPerSec);

  const lifecycle::LifecycleCounters& c = rig.supervisor.counters();
  // Every detected crash leads to exactly one rebuild, except possibly the
  // last one, which may still be waiting out its backoff at run end.
  EXPECT_LE(c.restores + c.cold_restarts, c.crashes);
  EXPECT_LE(c.crashes, c.restores + c.cold_restarts + 1);
  if (c.crashes == 0) {
    EXPECT_TRUE(rig.supervisor.alive());
    EXPECT_EQ(rig.supervisor.state(), lifecycle::SupervisorState::kRunning);
  }
  // The control surface stays readable whatever happened.
  EXPECT_NE(rig.supervisor.StateText().find("state "), std::string::npos);
  const std::string checkpoint = rig.supervisor.CaptureCheckpointText();
  EXPECT_NE(checkpoint.find("daos-checkpoint v1\n"), std::string::npos);
}

TEST(LifecycleBudgetTest, ZeroWidthWindowClampsToAggregationInterval) {
  // A zero-width sliding window would roll on every step and re-arm a
  // degraded engine continuously — crash containment silently off. The
  // effective window must clamp to at least one aggregation interval.
  lifecycle::SupervisorConfig config = FastCrashConfig();
  config.restart_budget_window = 0;
  Rig rig(config);
  rig.InstallOrDie("min max min min min max stat");
  EXPECT_EQ(rig.supervisor.EffectiveBudgetWindow(),
            rig.supervisor.context().attrs().aggregation_interval);
  EXPECT_GT(rig.supervisor.EffectiveBudgetWindow(), 0u);
  EXPECT_NE(rig.supervisor.StateText().find("budget_window_us "),
            std::string::npos)
      << rig.supervisor.StateText();
}

TEST(LifecycleBudgetTest, CommitRejectsAggregationWiderThanWindow) {
  // The clamp never silently *grows* a window the operator set: a bundle
  // whose aggregation interval exceeds the configured window is refused at
  // staging time, all-or-nothing.
  lifecycle::SupervisorConfig config;
  config.restart_budget_window = 1 * kUsPerSec;
  Rig rig(config);
  rig.space.TouchRange(kBase, kBase + kHeap, true, 0);
  rig.InstallOrDie("min max min min min max stat");
  rig.system.Run(1 * kUsPerSec);

  std::string error;
  EXPECT_FALSE(rig.supervisor.CommitFromText(
      "attrs 5000 2000000 4000000 10 1000\n", &error));
  EXPECT_NE(error.find("restart budget window"), std::string::npos) << error;
  EXPECT_FALSE(rig.supervisor.commit_pending());
  EXPECT_EQ(rig.supervisor.counters().commits, 0u);
  EXPECT_EQ(rig.supervisor.counters().rollbacks, 1u);
  EXPECT_EQ(rig.supervisor.context().attrs().aggregation_interval,
            100 * kUsPerMs)
      << "rejected attrs must leave the running configuration untouched";

  // The same bundle inside the window is accepted.
  EXPECT_TRUE(rig.supervisor.CommitFromText(
      "attrs 5000 500000 1000000 10 1000\n", &error))
      << error;
}

TEST(LifecycleCommitTest, CancelStagedCommitDropsTheBundle) {
  Rig rig;
  rig.space.TouchRange(kBase, kBase + kHeap, true, 0);
  rig.InstallOrDie("min max min min min max stat");
  rig.system.Run(1 * kUsPerSec);

  ASSERT_TRUE(rig.supervisor.CommitFromText(
      "attrs 5000 200000 1000000 10 1000\n", nullptr));
  ASSERT_TRUE(rig.supervisor.commit_pending());
  ASSERT_EQ(rig.supervisor.state(), lifecycle::SupervisorState::kDraining);

  rig.supervisor.CancelStagedCommit();
  EXPECT_FALSE(rig.supervisor.commit_pending());
  EXPECT_EQ(rig.supervisor.state(), lifecycle::SupervisorState::kRunning);
  EXPECT_EQ(rig.supervisor.last_commit_result(), "cancelled");

  // Nothing applies later: the bundle is gone, not deferred.
  rig.system.Run(2 * kUsPerSec);
  EXPECT_EQ(rig.supervisor.counters().commits, 0u);
  EXPECT_EQ(rig.supervisor.context().attrs().aggregation_interval,
            100 * kUsPerMs);
}

}  // namespace
