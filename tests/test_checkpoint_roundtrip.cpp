// Checkpoint round-trip properties (src/lifecycle/checkpoint.hpp).
//
// The contract under test: serialize -> parse -> serialize is the identity
// on the text, and restoring a capture into a freshly-built stack is the
// identity on the *behaviour* — the restored kdamond produces bit-identical
// monitoring state over the following aggregation windows compared with the
// uninterrupted run. Doubles travel as hex-floats ("%a"), so equality here
// means exact, not approximate.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>

#include "damon/primitives.hpp"
#include "fault/fault.hpp"
#include "lifecycle/checkpoint.hpp"
#include "lifecycle/supervisor.hpp"
#include "sim/address_space.hpp"
#include "sim/system.hpp"
#include "util/units.hpp"

namespace {

using namespace daos;

constexpr Addr kBase = 1 * GiB;
constexpr std::uint64_t kHeap = 64 * MiB;

/// A hand-built minimal checkpoint: one target, one region, no schemes.
lifecycle::Checkpoint TinyCheckpoint() {
  lifecycle::Checkpoint cp;
  cp.at = 123456;
  cp.sched.primed = true;
  cp.sched.next_sample = 123461;
  cp.sched.next_aggregate = 123556;
  cp.sched.next_update = 124456;
  cp.sched.rng_state = {1, 2, 3, 4};
  cp.sched.counters.samples = 10;
  cp.sched.counters.aggregations = 1;
  cp.sched.counters.cpu_us = 0.7;  // not representable in decimal: %a must
  cp.sched.target_layout_gens = {1};
  lifecycle::CheckpointTarget target;
  damon::Region region;
  region.start = kBase;
  region.end = kBase + 2 * MiB;
  region.nr_accesses = 3;
  region.last_nr_accesses = 2;
  region.age = 5;
  region.sampling_addr = kBase + 4096;
  target.regions.push_back(region);
  cp.targets.push_back(target);
  return cp;
}

/// One supervised kdamond over an anonymous heap, fault plane overridden
/// so DAOS_FAULTS cannot perturb the golden comparisons.
struct Rig {
  fault::FaultPlane plane;
  sim::System system;
  sim::AddressSpace space;
  lifecycle::KdamondSupervisor supervisor;

  Rig()
      : system(sim::MachineSpec{"ckpt", 4, 3.0, 4 * GiB},
               sim::SwapConfig::Zram()),
        space(1, &system.machine(), 3.0),
        supervisor(lifecycle::SupervisorConfig{}) {
    space.Map(kBase, kHeap, "heap");
    sim::AddressSpace* heap = &space;
    supervisor.SetTargetFactory([heap](damon::DamonContext& ctx) {
      ctx.AddTarget(std::make_unique<damon::VaddrPrimitives>(heap));
    });
    supervisor.AttachTo(system);
    system.SetFaultPlane(&plane);
  }

  void InstallOrDie(const char* schemes) {
    std::string error;
    ASSERT_TRUE(supervisor.InstallSchemesFromText(schemes, &error)) << error;
  }
};

// A governed scheme so the round trip crosses every serialized plane:
// stats, quota charges, priority weights, and the watermark gate.
constexpr char kGovernedScheme[] =
    "min max min min 1s max pageout quota_sz=4M quota_reset_ms=1000 "
    "prio_weights=3,7,1 wmarks=free_mem_rate,1000,500,1";

TEST(CheckpointFormatTest, HeaderBodyAndFooterPinned) {
  const std::string text = SerializeCheckpoint(TinyCheckpoint());
  EXPECT_EQ(text.rfind("daos-checkpoint v1\n", 0), 0u) << text;
  EXPECT_NE(text.find("\nat 123456\n"), std::string::npos);
  EXPECT_NE(text.find("\nrng 1 2 3 4\n"), std::string::npos);
  EXPECT_NE(text.find("\ntargets 1\n"), std::string::npos);
  EXPECT_NE(text.find("\nschemes 0\n"), std::string::npos);
  EXPECT_NE(text.find("\nrecorder 0 0 0\n"), std::string::npos);
  EXPECT_EQ(text.substr(text.size() - 4), "end\n");
}

TEST(CheckpointFormatTest, SerializeParseSerializeIsIdentity) {
  const std::string text = SerializeCheckpoint(TinyCheckpoint());
  lifecycle::CheckpointError error;
  const std::optional<lifecycle::Checkpoint> parsed =
      lifecycle::ParseCheckpoint(text, &error);
  ASSERT_TRUE(parsed.has_value())
      << "line " << error.line_number << ": " << error.message;
  EXPECT_EQ(parsed->at, 123456u);
  ASSERT_EQ(parsed->targets.size(), 1u);
  ASSERT_EQ(parsed->targets[0].regions.size(), 1u);
  EXPECT_EQ(parsed->targets[0].regions[0].age, 5u);
  EXPECT_EQ(parsed->sched.counters.cpu_us, 0.7);
  EXPECT_EQ(SerializeCheckpoint(*parsed), text);
}

TEST(CheckpointRoundTripTest, LiveCaptureReserializesExactly) {
  Rig rig;
  rig.space.TouchRange(kBase, kBase + kHeap, true, 0);
  rig.InstallOrDie(kGovernedScheme);
  rig.system.Run(3 * kUsPerSec);

  const std::string text = rig.supervisor.CaptureCheckpointText();
  lifecycle::CheckpointError error;
  const std::optional<lifecycle::Checkpoint> parsed =
      lifecycle::ParseCheckpoint(text, &error);
  ASSERT_TRUE(parsed.has_value())
      << "line " << error.line_number << ": " << error.message;
  // Hex-float doubles and raw integer fields reproduce the exact text —
  // the property that makes a checkpoint a faithful state fingerprint.
  EXPECT_EQ(SerializeCheckpoint(*parsed), text);
  EXPECT_GT(parsed->targets.at(0).regions.size(), 0u);
  ASSERT_EQ(parsed->schemes.size(), 1u);
  EXPECT_GT(parsed->schemes[0].scheme.stats().nr_tried, 0u);
}

TEST(CheckpointRoundTripTest, RestoreIsIdentityOverFollowingWindows) {
  // Two identical systems stepped in lockstep stay bit-identical (the sim
  // is deterministic). Mid-run, B's stack is torn down and rebuilt from
  // its own checkpoint text; if restore is lossless, A and B must remain
  // indistinguishable for every window after it.
  Rig a;
  Rig b;
  a.space.TouchRange(kBase, kBase + kHeap, true, 0);
  b.space.TouchRange(kBase, kBase + kHeap, true, 0);
  a.InstallOrDie(kGovernedScheme);
  b.InstallOrDie(kGovernedScheme);

  auto run_lockstep = [&](SimTimeUs until) {
    while (a.system.Now() < until) {
      // A shifting hot set so splits, merges, quota charging and the
      // recorder all stay busy across the restore point.
      if (a.system.Now() % (250 * kUsPerMs) == 0) {
        const Addr hot =
            kBase + (a.system.Now() / (250 * kUsPerMs) % 4) * (8 * MiB);
        a.space.TouchRange(hot, hot + 8 * MiB, true, a.system.Now());
        b.space.TouchRange(hot, hot + 8 * MiB, true, b.system.Now());
      }
      a.system.Step();
      b.system.Step();
    }
  };

  run_lockstep(2 * kUsPerSec);
  const std::string at_2s_a = a.supervisor.CaptureCheckpointText();
  const std::string at_2s_b = b.supervisor.CaptureCheckpointText();
  ASSERT_EQ(at_2s_a, at_2s_b) << "lockstep baseline diverged";

  std::string error;
  ASSERT_TRUE(b.supervisor.RestoreFromText(at_2s_b, &error)) << error;
  EXPECT_EQ(b.supervisor.counters().restores, 1u);

  run_lockstep(4 * kUsPerSec);
  EXPECT_EQ(a.supervisor.CaptureCheckpointText(),
            b.supervisor.CaptureCheckpointText());
}

TEST(CheckpointRoundTripTest, RejectedRestoreLeavesRunningStackUntouched) {
  Rig rig;
  rig.space.TouchRange(kBase, kBase + kHeap, true, 0);
  rig.InstallOrDie(kGovernedScheme);
  rig.system.Run(2 * kUsPerSec);

  const std::string before = rig.supervisor.CaptureCheckpointText();
  std::string error;
  EXPECT_FALSE(rig.supervisor.RestoreFromText("daos-checkpoint v2\n", &error));
  EXPECT_NE(error.find("line 1"), std::string::npos) << error;
  EXPECT_EQ(rig.supervisor.counters().restores, 0u);
  // Parse errors are detected before the old stack is torn down.
  EXPECT_EQ(before, rig.supervisor.CaptureCheckpointText());
}

TEST(CheckpointRoundTripTest, TargetCountMismatchFailsRestore) {
  lifecycle::Checkpoint cp = TinyCheckpoint();
  cp.targets.push_back(cp.targets[0]);  // claims two targets
  cp.sched.target_layout_gens = {1, 1};

  Rig rig;  // factory creates exactly one target
  std::string error;
  EXPECT_FALSE(
      rig.supervisor.RestoreFromText(SerializeCheckpoint(cp), &error));
  EXPECT_NE(error.find("2 targets"), std::string::npos) << error;
}

}  // namespace
