#include "dbgfs/damon_dbgfs.hpp"

#include <gtest/gtest.h>

#include "dbgfs/procfs.hpp"
#include "sim/system.hpp"
#include "workload/generator.hpp"
#include "workload/profile.hpp"

namespace daos::dbgfs {
namespace {

workload::WorkloadProfile SmallProfile() {
  workload::WorkloadProfile p;
  p.name = "test/dbgfs";
  p.suite = "test";
  p.data_bytes = 64 * MiB;
  p.runtime_s = 30;
  p.noise = 0;
  p.groups = {workload::GroupSpec{0.25, 0.0, 1.0, 0.3},
              workload::GroupSpec{0.75, -1.0, 1.0, 0.2}};
  return p;
}

class DbgfsTest : public ::testing::Test {
 protected:
  DbgfsTest()
      : system_(sim::MachineSpec::I3Metal().GuestOf(), sim::SwapConfig::Zram(),
                sim::ThpMode::kNever, 5 * kUsPerMs),
        proc_(system_.AddProcess(workload::ToProcessParams(SmallProfile()),
                                 workload::MakeSource(SmallProfile(), 3))),
        dbgfs_(&system_, &fs_) {}

  sim::System system_;
  sim::Process& proc_;
  PseudoFs fs_;
  DamonDbgfs dbgfs_;
};

TEST(PseudoFsTest, RegisterReadWrite) {
  PseudoFs fs;
  std::string store = "hello\n";
  fs.RegisterFile(
      "/x", [&store] { return store; },
      [&store](std::string_view c, std::string*) {
        store = std::string(c);
        return true;
      });
  EXPECT_TRUE(fs.Exists("/x"));
  EXPECT_EQ(fs.Read("/x").value(), "hello\n");
  EXPECT_TRUE(fs.Write("/x", "bye\n"));
  EXPECT_EQ(fs.Read("/x").value(), "bye\n");
}

TEST(PseudoFsTest, MissingAndReadOnly) {
  PseudoFs fs;
  fs.RegisterFile("/ro", [] { return std::string("x"); }, nullptr);
  std::string error;
  EXPECT_FALSE(fs.Read("/nope").has_value());
  EXPECT_FALSE(fs.Write("/nope", "x", &error));
  EXPECT_NE(error.find("no such file"), std::string::npos);
  EXPECT_FALSE(fs.Write("/ro", "x", &error));
  EXPECT_NE(error.find("read-only"), std::string::npos);
}

TEST(PseudoFsTest, ListByPrefix) {
  PseudoFs fs;
  fs.RegisterFile("/a/1", [] { return std::string(); }, nullptr);
  fs.RegisterFile("/a/2", [] { return std::string(); }, nullptr);
  fs.RegisterFile("/b/1", [] { return std::string(); }, nullptr);
  EXPECT_EQ(fs.List("/a").size(), 2u);
  EXPECT_EQ(fs.List().size(), 3u);
  fs.RemoveFile("/a/1");
  EXPECT_EQ(fs.List("/a").size(), 1u);
}

TEST_F(DbgfsTest, FilesRegistered) {
  for (const char* f : {"/damon/attrs", "/damon/target_ids", "/damon/schemes",
                        "/damon/monitor_on"}) {
    EXPECT_TRUE(fs_.Exists(f)) << f;
  }
}

TEST_F(DbgfsTest, AttrsRoundTrip) {
  EXPECT_EQ(fs_.Read("/damon/attrs").value(), "5000 100000 1000000 10 1000\n");
  EXPECT_TRUE(fs_.Write("/damon/attrs", "10000 200000 2000000 5 500"));
  EXPECT_EQ(fs_.Read("/damon/attrs").value(),
            "10000 200000 2000000 5 500\n");
  EXPECT_EQ(dbgfs_.context().attrs().sampling_interval, 10000u);
}

TEST_F(DbgfsTest, AttrsValidation) {
  std::string error;
  EXPECT_FALSE(fs_.Write("/damon/attrs", "1 2 3", &error));
  EXPECT_FALSE(fs_.Write("/damon/attrs", "0 100 1000 10 100", &error));
  EXPECT_FALSE(fs_.Write("/damon/attrs", "5000 100 1000 10 five", &error));
  // Original attrs untouched after failed writes.
  EXPECT_EQ(dbgfs_.context().attrs().sampling_interval, 5000u);
}

TEST_F(DbgfsTest, TargetIdsResolvePids) {
  EXPECT_TRUE(fs_.Write("/damon/target_ids",
                        std::to_string(proc_.pid())));
  EXPECT_EQ(dbgfs_.context().targets().size(), 1u);
  EXPECT_EQ(fs_.Read("/damon/target_ids").value(),
            std::to_string(proc_.pid()) + "\n");
}

TEST_F(DbgfsTest, TargetIdsRejectUnknownPid) {
  std::string error;
  EXPECT_FALSE(fs_.Write("/damon/target_ids", "999", &error));
  EXPECT_NE(error.find("no such pid"), std::string::npos);
  EXPECT_TRUE(dbgfs_.context().targets().empty());
}

TEST_F(DbgfsTest, PaddrTarget) {
  EXPECT_TRUE(fs_.Write("/damon/target_ids", "paddr"));
  EXPECT_EQ(fs_.Read("/damon/target_ids").value(), "paddr\n");
  EXPECT_EQ(dbgfs_.context().targets().size(), 1u);
  std::string error;
  EXPECT_FALSE(fs_.Write("/damon/target_ids", "paddr 1", &error));
}

TEST_F(DbgfsTest, SchemesInstallAndStats) {
  EXPECT_TRUE(fs_.Write("/damon/schemes", "min max min min 2s max pageout\n"));
  const std::string schemes = fs_.Read("/damon/schemes").value();
  EXPECT_NE(schemes.find("pageout"), std::string::npos);
  EXPECT_NE(schemes.find("tried 0"), std::string::npos);

  std::string error;
  EXPECT_FALSE(fs_.Write("/damon/schemes", "gibberish\n", &error));
  // Previously installed schemes survive a rejected write.
  EXPECT_EQ(dbgfs_.engine().schemes().size(), 1u);
}

TEST_F(DbgfsTest, MonitorOnRequiresTargets) {
  std::string error;
  EXPECT_FALSE(fs_.Write("/damon/monitor_on", "on", &error));
  EXPECT_NE(error.find("no monitoring targets"), std::string::npos);
  EXPECT_TRUE(fs_.Write("/damon/target_ids", std::to_string(proc_.pid())));
  EXPECT_TRUE(fs_.Write("/damon/monitor_on", "on"));
  EXPECT_EQ(fs_.Read("/damon/monitor_on").value(), "on\n");
  EXPECT_TRUE(fs_.Write("/damon/monitor_on", "off"));
  EXPECT_FALSE(fs_.Write("/damon/monitor_on", "maybe", &error));
}

TEST_F(DbgfsTest, EndToEndKernelWorkflow) {
  // The §3.6 workflow: configure via file writes, run, read results back.
  ASSERT_TRUE(fs_.Write("/damon/target_ids", std::to_string(proc_.pid())));
  ASSERT_TRUE(
      fs_.Write("/damon/schemes", "min max min min 2s max pageout\n"));
  ASSERT_TRUE(fs_.Write("/damon/monitor_on", "on"));

  system_.Run(10 * kUsPerSec);

  // The idle 75 % of the heap must have been paged out.
  EXPECT_GT(proc_.space().swapped_pages(), (24 * MiB) / kPageSize);
  const std::string schemes = fs_.Read("/damon/schemes").value();
  EXPECT_EQ(schemes.find("applied 0"), std::string::npos);
}

TEST_F(DbgfsTest, MonitorOffStopsWork) {
  ASSERT_TRUE(fs_.Write("/damon/target_ids", std::to_string(proc_.pid())));
  ASSERT_TRUE(
      fs_.Write("/damon/schemes", "min max min min 1s max pageout\n"));
  // Never switched on: nothing happens.
  system_.Run(5 * kUsPerSec);
  EXPECT_EQ(proc_.space().swapped_pages(), 0u);
  EXPECT_EQ(dbgfs_.context().counters().samples, 0u);
}

TEST_F(DbgfsTest, ProcfsReportsRss) {
  ProcFs procfs(&system_, &fs_);
  system_.Run(kUsPerSec);  // populate
  const std::uint64_t rss = procfs.ReadRssBytes(proc_.pid());
  EXPECT_NEAR(static_cast<double>(rss),
              static_cast<double>(proc_.ReadRssBytes()),
              static_cast<double>(2 * KiB));
  // status file has the Linux-style lines.
  const std::string status =
      fs_.Read("/proc/" + std::to_string(proc_.pid()) + "/status").value();
  EXPECT_NE(status.find("VmRSS:"), std::string::npos);
  EXPECT_NE(status.find("VmSize:"), std::string::npos);
  EXPECT_EQ(procfs.ReadRssBytes(4242), 0u);
}

TEST_F(DbgfsTest, ProcfsStatmPages) {
  ProcFs procfs(&system_, &fs_);
  system_.Run(kUsPerSec);
  const std::string statm =
      fs_.Read("/proc/" + std::to_string(proc_.pid()) + "/statm").value();
  unsigned long long size = 0, resident = 0;
  ASSERT_EQ(std::sscanf(statm.c_str(), "%llu %llu", &size, &resident), 2);
  EXPECT_EQ(resident, proc_.space().resident_pages());
  EXPECT_EQ(size, proc_.space().mapped_bytes() / kPageSize);
}

}  // namespace
}  // namespace daos::dbgfs
