// Fleet rollout controller tests (src/fleet): canary promotion, the
// rollback bit-identity property, quorum starvation, quarantine policy,
// and crash-storm containment.
//
// All rigs except the env-stress one pin `use_env_faults = false`, so the
// golden comparisons stay deterministic under the CI fault-stress job
// (DAOS_FAULTS armed). The fleet's own fault points are then driven
// explicitly through ConfigureFaults.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "dbgfs/fleet_fs.hpp"
#include "dbgfs/pseudo_fs.hpp"
#include "fleet/controller.hpp"
#include "util/units.hpp"

namespace {

using namespace daos;

/// 4 shards x 8 servers of 16M each: small enough that a test runs dozens
/// of epochs in milliseconds, big enough that pageout savings are visible.
/// No cold strays and no env faults: fully deterministic.
fleet::FleetConfig SmallFleet() {
  fleet::FleetConfig config;
  config.nr_shards = 4;
  config.workload.nr_processes = 8;
  config.workload.rss_per_process = 16 * MiB;
  config.workload.cold_touch_period_s = 0;
  config.machine = {"test-fleet", 4, 3.0, GiB};
  config.swap = sim::SwapConfig::File(GiB);
  config.quantum = 5 * kUsPerMs;
  config.epoch = 250 * kUsPerMs;
  config.use_env_faults = false;
  return config;
}

std::vector<std::string> CaptureAll(fleet::FleetController& fleet) {
  std::vector<std::string> out;
  for (std::size_t i = 0; i < fleet.nr_shards(); ++i)
    out.push_back(fleet.supervisor(i).CaptureCheckpointText());
  return out;
}

std::vector<std::uint64_t> RssAll(fleet::FleetController& fleet) {
  std::vector<std::uint64_t> out;
  for (std::size_t i = 0; i < fleet.nr_shards(); ++i) {
    std::uint64_t rss = 0;
    for (const auto& p : fleet.system(i).processes())
      rss += p->ReadRssBytes();
    out.push_back(rss);
  }
  return out;
}

// ---- promotion ------------------------------------------------------------

TEST(FleetRollout, CanaryRampPromotes) {
  fleet::FleetConfig config = SmallFleet();
  config.initial_schemes = "min max min min 6s max pageout";
  fleet::FleetController fleet(config);
  for (int epoch = 0; epoch < 4; ++epoch) fleet.RunEpoch();

  fleet::RolloutSpec spec;
  spec.bundle_text = "scheme min max min min 1s max pageout\n";
  spec.canary_frac = 0.25;
  spec.ramp = {0.5, 1.0};
  spec.gate_epochs = 2;
  spec.timeout_epochs = 40;
  std::string error;
  ASSERT_TRUE(fleet.StartRollout(spec, &error)) << error;
  EXPECT_EQ(fleet.rollout_state(), fleet::RolloutState::kCanary);

  EXPECT_EQ(fleet.RunRollout(), fleet::RolloutState::kPromoted);
  EXPECT_EQ(fleet.counters().promoted, 1u);
  EXPECT_EQ(fleet.counters().stage_promotions, 2u);
  EXPECT_EQ(fleet.counters().gate_trips, 0u);
  EXPECT_FALSE(fleet.rollout_active());
  for (std::size_t i = 0; i < fleet.nr_shards(); ++i)
    EXPECT_FALSE(fleet.in_wave(i)) << "shard " << i;

  // The promoted 1s PAGEOUT trims the ~90 % cold bloat on every shard.
  const std::uint64_t initial =
      static_cast<std::uint64_t>(config.workload.nr_processes) *
      config.workload.rss_per_process;
  for (int epoch = 0; epoch < 8; ++epoch) fleet.RunEpoch();
  for (const std::uint64_t rss : RssAll(fleet))
    EXPECT_LT(rss, initial / 2);
}

TEST(FleetRollout, RejectsBadSpecsWithNothingStaged) {
  fleet::FleetController fleet(SmallFleet());
  fleet.RunEpoch();
  std::string error;
  fleet::RolloutSpec spec;
  spec.bundle_text = "scheme min max min min 1s max pageout\n";

  spec.canary_frac = 1.5;
  EXPECT_FALSE(fleet.StartRollout(spec, &error));
  spec.canary_frac = 0.25;
  spec.ramp = {0.5, 0.25};  // not ascending
  EXPECT_FALSE(fleet.StartRollout(spec, &error));
  spec.ramp = {1.0};
  spec.bundle_text = "scheme not a scheme\n";
  EXPECT_FALSE(fleet.StartRollout(spec, &error));
  spec.bundle_text = "";
  EXPECT_FALSE(fleet.StartRollout(spec, &error));

  EXPECT_EQ(fleet.rollout_state(), fleet::RolloutState::kIdle);
  EXPECT_EQ(fleet.counters().rollouts, 0u);
  for (std::size_t i = 0; i < fleet.nr_shards(); ++i)
    EXPECT_FALSE(fleet.in_wave(i));
}

TEST(FleetRollout, ParseRolloutSpecGrammar) {
  fleet::RolloutSpec spec;
  std::string error;
  EXPECT_TRUE(fleet::FleetController::ParseRolloutSpec(
      "# comment\n"
      "canary 0.125\n"
      "ramp 0.25 0.5 1.0\n"
      "gate_epochs 3\n"
      "timeout_epochs 16\n"
      "max_saving_regression 0.1\n"
      "max_cpu_overhead 0.02\n"
      "max_scheme_errors 5\n"
      "scheme min max min min 1s max pageout\n",
      &spec, &error))
      << error;
  EXPECT_DOUBLE_EQ(spec.canary_frac, 0.125);
  ASSERT_EQ(spec.ramp.size(), 3u);
  EXPECT_DOUBLE_EQ(spec.ramp[2], 1.0);
  EXPECT_EQ(spec.gate_epochs, 3u);
  EXPECT_EQ(spec.timeout_epochs, 16u);
  EXPECT_DOUBLE_EQ(spec.max_cpu_overhead, 0.02);
  EXPECT_EQ(spec.max_scheme_errors, 5u);
  EXPECT_EQ(spec.bundle_text, "scheme min max min min 1s max pageout\n");

  // Line-numbered all-or-nothing failures.
  EXPECT_FALSE(fleet::FleetController::ParseRolloutSpec(
      "canary 0.5\nbogus 1\n", &spec, &error));
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
  EXPECT_FALSE(fleet::FleetController::ParseRolloutSpec(
      "canary 0.5 extra\nscheme min max min min 1s max stat\n", &spec,
      &error));
  EXPECT_FALSE(
      fleet::FleetController::ParseRolloutSpec("canary 0.5\n", &spec, &error))
      << "bundle-less spec must be rejected";
}

// ---- the rollback bit-identity property -----------------------------------

/// A rollout whose PAGEOUT attempts all fail (swap.write_error p=1.0)
/// against an initial STAT scheme that never touches the sim: the error
/// gate must trip on the canary wave, and after rollback the fleet must be
/// bit-identical — checkpoints and subsequent replay — to a golden fleet
/// that never saw the rollout. `inject_rollback_fail` additionally forces
/// the first restore attempt per shard to fail, exercising the bounded
/// retry path, which must converge to the same goldens one epoch later.
void RollbackBitIdentity(bool inject_rollback_fail) {
  fleet::FleetConfig config = SmallFleet();
  config.initial_schemes = "min max min min 2s max stat";

  fleet::FleetController tested(config);
  fleet::FleetController golden(config);
  std::string error;
  // Identical arming on both fleets. The golden never draws from either
  // point: STAT pages nothing out and no rollback ever starts there.
  std::string faults = "swap.write_error p=1.0";
  if (inject_rollback_fail) faults += "; fleet.rollback_fail once=1";
  ASSERT_TRUE(tested.ConfigureFaults(faults, &error)) << error;
  ASSERT_TRUE(golden.ConfigureFaults(faults, &error)) << error;

  for (int epoch = 0; epoch < 6; ++epoch) tested.RunEpoch();

  fleet::RolloutSpec spec;
  spec.bundle_text = "scheme min max min min 2s max pageout\n";
  spec.canary_frac = 0.25;
  spec.ramp = {1.0};
  spec.gate_epochs = 2;
  spec.timeout_epochs = 20;
  spec.max_scheme_errors = 0;
  ASSERT_TRUE(tested.StartRollout(spec, &error)) << error;
  ASSERT_EQ(tested.RunRollout(), fleet::RolloutState::kRolledBack);
  EXPECT_GE(tested.counters().gate_trips, 1u);
  EXPECT_FALSE(tested.rollout_active());
  if (inject_rollback_fail) {
    EXPECT_GE(tested.counters().rollback_retries, 1u);
    EXPECT_EQ(tested.counters().rollback_failures, 0u);
  }

  // Replay the same wall of epochs on the golden fleet, then let both run
  // on: the restored monitors must reconverge bit-identically.
  for (int epoch = 0; epoch < 6; ++epoch) tested.RunEpoch();
  while (golden.counters().epochs < tested.counters().epochs)
    golden.RunEpoch();
  ASSERT_EQ(golden.Now(), tested.Now());

  const std::vector<std::string> tested_cp = CaptureAll(tested);
  const std::vector<std::string> golden_cp = CaptureAll(golden);
  const std::vector<std::uint64_t> tested_rss = RssAll(tested);
  const std::vector<std::uint64_t> golden_rss = RssAll(golden);
  for (std::size_t i = 0; i < tested.nr_shards(); ++i) {
    EXPECT_EQ(tested_cp[i], golden_cp[i]) << "shard " << i;
    EXPECT_EQ(tested_rss[i], golden_rss[i]) << "shard " << i;
  }
}

TEST(FleetRollback, GateTripLeavesFleetBitIdentical) {
  RollbackBitIdentity(/*inject_rollback_fail=*/false);
}

TEST(FleetRollback, RetriedRollbackConvergesToSameGolden) {
  RollbackBitIdentity(/*inject_rollback_fail=*/true);
}

// ---- quorum starvation ----------------------------------------------------

TEST(FleetRollout, TelemetryLossStarvationAborts) {
  fleet::FleetController fleet(SmallFleet());
  std::string error;
  for (int epoch = 0; epoch < 4; ++epoch) fleet.RunEpoch();
  // Every health sample is lost from here on: the gate can never reach a
  // quorum, so the rollout must neither promote nor roll back on data it
  // does not have — it times out and aborts.
  ASSERT_TRUE(fleet.ConfigureFaults("fleet.telemetry_loss p=1.0", &error))
      << error;

  fleet::RolloutSpec spec;
  spec.bundle_text = "scheme min max min min 1s max pageout\n";
  spec.canary_frac = 0.25;
  spec.ramp = {1.0};
  spec.gate_epochs = 1;
  spec.timeout_epochs = 3;
  ASSERT_TRUE(fleet.StartRollout(spec, &error)) << error;
  EXPECT_EQ(fleet.RunRollout(), fleet::RolloutState::kAborted);
  EXPECT_EQ(fleet.counters().aborted, 1u);
  EXPECT_GE(fleet.counters().quorum_misses, 3u);
  EXPECT_GE(fleet.counters().telemetry_losses, 3u);
  EXPECT_FALSE(fleet.rollout_active());
  for (std::size_t i = 0; i < fleet.nr_shards(); ++i)
    EXPECT_FALSE(fleet.in_wave(i)) << "shard " << i;
}

// ---- quarantine policy ----------------------------------------------------

TEST(FleetQuarantine, FileRoundTripsAndRejectsBadWrites) {
  fleet::FleetController fleet(SmallFleet());
  fleet.RunEpoch();
  std::string error;
  EXPECT_TRUE(fleet.WriteQuarantine("add 1\nadd 3\n", &error)) << error;
  EXPECT_TRUE(fleet.quarantined(1));
  EXPECT_TRUE(fleet.quarantined(3));
  EXPECT_EQ(fleet.QuarantineText(), "add 1\nadd 3\n");
  // The read is valid input for the write: round-trip is a no-op.
  EXPECT_TRUE(fleet.WriteQuarantine(fleet.QuarantineText(), &error));
  EXPECT_EQ(fleet.QuarantineText(), "add 1\nadd 3\n");

  EXPECT_TRUE(fleet.WriteQuarantine("release 1", &error));
  EXPECT_EQ(fleet.QuarantineText(), "add 3\n");
  EXPECT_TRUE(fleet.WriteQuarantine("clear", &error));
  EXPECT_EQ(fleet.QuarantineText(), "");

  // All-or-nothing with line-numbered errors.
  EXPECT_FALSE(fleet.WriteQuarantine("add 1\nadd 99\n", &error));
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
  EXPECT_FALSE(fleet.quarantined(1)) << "partial write must not apply";
  EXPECT_FALSE(fleet.WriteQuarantine("evict 1", &error));
  EXPECT_FALSE(fleet.WriteQuarantine("add", &error));
}

TEST(FleetQuarantine, QuarantinedShardsAreExcludedFromWaves) {
  fleet::FleetController fleet(SmallFleet());
  for (int epoch = 0; epoch < 2; ++epoch) fleet.RunEpoch();
  std::string error;
  ASSERT_TRUE(fleet.WriteQuarantine("add 0\nadd 1\n", &error)) << error;

  fleet::RolloutSpec spec;
  spec.bundle_text = "scheme min max min min 1s max pageout\n";
  spec.canary_frac = 0.5;  // of the 2 active shards -> shard 2 only
  spec.ramp = {1.0};
  spec.gate_epochs = 1;
  spec.timeout_epochs = 20;
  ASSERT_TRUE(fleet.StartRollout(spec, &error)) << error;
  EXPECT_TRUE(fleet.in_wave(2));
  EXPECT_FALSE(fleet.in_wave(0));
  EXPECT_FALSE(fleet.in_wave(1));
  EXPECT_EQ(fleet.RunRollout(), fleet::RolloutState::kPromoted);
  EXPECT_FALSE(fleet.in_wave(0)) << "quarantined shards never join a wave";
}

// ---- crash storms ---------------------------------------------------------

fleet::FleetConfig StormFleet() {
  fleet::FleetConfig config = SmallFleet();
  config.workload.nr_processes = 4;
  config.supervisor.checkpoint_interval = 500 * kUsPerMs;
  config.supervisor.heartbeat_interval = 50 * kUsPerMs;
  config.supervisor.heartbeat_timeout = 150 * kUsPerMs;
  config.supervisor.restart_backoff = 50 * kUsPerMs;
  config.supervisor.max_backoff_exp = 2;
  config.supervisor.restart_budget = 2;
  config.supervisor.restart_budget_window = 4 * kUsPerSec;
  config.quarantine_crash_threshold = 2;
  config.quarantine_window_epochs = 8;
  config.quarantine_probation_epochs = 2;
  return config;
}

TEST(FleetCrashStorm, QuarantinesWithoutDeadlockAndStateRoundTrips) {
  fleet::FleetController fleet(StormFleet());
  std::string error;
  ASSERT_TRUE(fleet.ConfigureFaults("daemon.crash p=0.01", &error)) << error;
  for (int epoch = 0; epoch < 60; ++epoch) fleet.RunEpoch();

  std::uint64_t crashes = 0;
  for (std::size_t i = 0; i < fleet.nr_shards(); ++i)
    crashes += fleet.supervisor(i).counters().crashes;
  EXPECT_GT(crashes, 0u) << "the storm must actually kill kdamonds";
  EXPECT_GT(fleet.counters().quarantines, 0u);

  // The fleet state text stays parseable and round-trips mid-storm.
  const std::string status = fleet.StatusText();
  EXPECT_EQ(status.rfind("state ", 0), 0u) << status;
  EXPECT_NE(status.find("shard 0 state "), std::string::npos);
  EXPECT_TRUE(fleet.WriteQuarantine(fleet.QuarantineText(), &error)) << error;

  // Quarantined shards are monitoring-only: schemes disarmed.
  for (std::size_t i = 0; i < fleet.nr_shards(); ++i)
    if (fleet.quarantined(i))
      EXPECT_TRUE(fleet.supervisor(i).engine().disarmed()) << "shard " << i;
}

TEST(FleetCrashStorm, DisarmedRerunIsBitIdenticalToNeverFaulted) {
  fleet::FleetController armed(StormFleet());
  fleet::FleetController never(StormFleet());
  std::string error;
  // Arm the storm, then disarm before any epoch runs: a disarmed point
  // draws nothing, so the run must be bit-identical to never arming.
  ASSERT_TRUE(armed.ConfigureFaults("daemon.crash p=0.2", &error)) << error;
  ASSERT_TRUE(armed.ConfigureFaults("daemon.crash off", &error)) << error;
  for (int epoch = 0; epoch < 12; ++epoch) {
    armed.RunEpoch();
    never.RunEpoch();
  }
  const std::vector<std::string> a = CaptureAll(armed);
  const std::vector<std::string> b = CaptureAll(never);
  for (std::size_t i = 0; i < armed.nr_shards(); ++i)
    EXPECT_EQ(a[i], b[i]) << "shard " << i;
}

// ---- scheduling independence ----------------------------------------------

TEST(FleetDeterminism, JobsOneAndFourAreBitIdentical) {
  const char* saved = std::getenv("DAOS_JOBS");
  const std::string saved_value = saved != nullptr ? saved : "";

  ::setenv("DAOS_JOBS", "1", 1);
  fleet::FleetController serial(SmallFleet());
  ::setenv("DAOS_JOBS", "4", 1);
  fleet::FleetController parallel(SmallFleet());
  std::string error;
  fleet::RolloutSpec spec;
  spec.bundle_text = "scheme min max min min 1s max pageout\n";
  spec.canary_frac = 0.25;
  spec.ramp = {1.0};
  spec.gate_epochs = 1;
  spec.timeout_epochs = 20;
  for (fleet::FleetController* fleet : {&serial, &parallel}) {
    for (int epoch = 0; epoch < 3; ++epoch) fleet->RunEpoch();
    ASSERT_TRUE(fleet->StartRollout(spec, &error)) << error;
    fleet->RunRollout();
    for (int epoch = 0; epoch < 3; ++epoch) fleet->RunEpoch();
  }
  if (saved != nullptr)
    ::setenv("DAOS_JOBS", saved_value.c_str(), 1);
  else
    ::unsetenv("DAOS_JOBS");

  EXPECT_EQ(serial.rollout_state(), parallel.rollout_state());
  EXPECT_EQ(serial.StatusText(), parallel.StatusText());
  const std::vector<std::string> a = CaptureAll(serial);
  const std::vector<std::string> b = CaptureAll(parallel);
  for (std::size_t i = 0; i < serial.nr_shards(); ++i)
    EXPECT_EQ(a[i], b[i]) << "shard " << i;
}

// ---- the dbgfs surface ----------------------------------------------------

TEST(FleetFs, ControlFilesDriveTheController) {
  fleet::FleetController fleet(SmallFleet());
  dbgfs::PseudoFs fs;
  dbgfs::FleetFs fleet_fs(&fs, &fleet);
  for (int epoch = 0; epoch < 4; ++epoch) fleet.RunEpoch();

  const std::optional<std::string> status = fs.Read("/fleet/status");
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->rfind("state idle", 0), 0u) << *status;

  std::string error;
  EXPECT_FALSE(fs.Write("/fleet/rollout", "canary 0.5\n", &error))
      << "bundle-less spec must fail the write";
  ASSERT_TRUE(fs.Write("/fleet/rollout",
                       "canary 0.25\nramp 1.0\ngate_epochs 1\n"
                       "scheme min max min min 1s max pageout\n",
                       &error))
      << error;
  fleet.RunRollout();
  EXPECT_EQ(fs.Read("/fleet/rollout")->rfind("promoted", 0), 0u);

  ASSERT_TRUE(fs.Write("/fleet/quarantine", "add 2\n", &error)) << error;
  EXPECT_EQ(*fs.Read("/fleet/quarantine"), "add 2\n");
  EXPECT_FALSE(fs.Write("/fleet/quarantine", "add 42\n", &error));
}

// ---- env-armed stress (the CI crash-storm leg) ----------------------------

/// The one rig that keeps DAOS_FAULTS armed (fleet.shard_crash storms in
/// CI): asserts only the invariants that hold under arbitrary injection —
/// the control loop terminates, clocks stay lockstep, and the state text
/// stays well-formed.
TEST(FleetEnvStress, SurvivesEnvFaultInjection) {
  fleet::FleetConfig config = StormFleet();
  config.use_env_faults = true;
  fleet::FleetController fleet(config);
  for (int epoch = 0; epoch < 40; ++epoch) fleet.RunEpoch();
  EXPECT_EQ(fleet.counters().epochs, 40u);
  for (std::size_t i = 0; i < fleet.nr_shards(); ++i)
    EXPECT_EQ(fleet.system(i).Now(), fleet.Now()) << "shard " << i;
  const std::string status = fleet.StatusText();
  EXPECT_EQ(status.rfind("state ", 0), 0u) << status;
  std::string error;
  EXPECT_TRUE(fleet.WriteQuarantine(fleet.QuarantineText(), &error)) << error;
}

}  // namespace
