#include "fault/fault.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "dbgfs/damon_dbgfs.hpp"
#include "dbgfs/fault_fs.hpp"
#include "sim/system.hpp"
#include "telemetry/metrics.hpp"
#include "workload/generator.hpp"
#include "workload/profile.hpp"

namespace daos::fault {
namespace {

std::vector<bool> Schedule(FaultPoint& point, int checks) {
  std::vector<bool> fired;
  fired.reserve(checks);
  for (int i = 0; i < checks; ++i) fired.push_back(point.Check());
  return fired;
}

TEST(FaultPointTest, DisarmedNeverFiresAndCountsNothing) {
  FaultPlane plane(7);
  FaultPoint& p = plane.Point(kSwapWriteError);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(p.Check());
  EXPECT_EQ(p.hits(), 0u);
  EXPECT_EQ(p.fires(), 0u);
}

TEST(FaultPointTest, EveryNthFiresOnExactOrdinals) {
  FaultPlane plane(7);
  FaultPoint& p = plane.Point("x");
  p.Arm(FaultSpec{0.0, 3, 0});
  const std::vector<bool> fired = Schedule(p, 9);
  const std::vector<bool> want = {false, false, true, false, false,
                                  true,  false, false, true};
  EXPECT_EQ(fired, want);
  EXPECT_EQ(p.hits(), 9u);
  EXPECT_EQ(p.fires(), 3u);
}

TEST(FaultPointTest, OnceFiresExactlyOnceAtOrdinal) {
  FaultPlane plane(7);
  FaultPoint& p = plane.Point("x");
  p.Arm(FaultSpec{0.0, 0, 4});
  const std::vector<bool> fired = Schedule(p, 10);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[i], i == 3) << "check " << i;
  EXPECT_EQ(p.fires(), 1u);
}

TEST(FaultPointTest, ProbabilityFiresRoughlyAtRate) {
  FaultPlane plane(7);
  FaultPoint& p = plane.Point("x");
  p.Arm(FaultSpec{0.2, 0, 0});
  (void)Schedule(p, 10000);
  EXPECT_GT(p.fires(), 1500u);
  EXPECT_LT(p.fires(), 2500u);
}

TEST(FaultPointTest, CombinedTriggersUnion) {
  FaultPlane plane(7);
  FaultPoint& p = plane.Point("x");
  p.Arm(FaultSpec{0.0, 4, 2});
  const std::vector<bool> fired = Schedule(p, 8);
  const std::vector<bool> want = {false, true,  false, true,
                                  false, false, false, true};
  EXPECT_EQ(fired, want);
}

TEST(FaultPointTest, RearmReplaysIdenticalSchedule) {
  FaultPlane plane(99);
  FaultPoint& p = plane.Point("x");
  p.Arm(FaultSpec{0.3, 0, 0});
  const std::vector<bool> first = Schedule(p, 200);
  p.Arm(FaultSpec{0.3, 0, 0});  // rewinds ordinals and the RNG stream
  EXPECT_EQ(Schedule(p, 200), first);
}

TEST(FaultPointTest, CumulativeCountsSurviveRearmAndDisarm) {
  // hits()/fires() reset with every Arm() (the replay contract), but the
  // lifetime totals keep accumulating — windowed chaos campaigns re-arm
  // points at slice boundaries and audit totals at the end of the run.
  FaultPlane plane(3);
  FaultPoint& p = plane.Point("x");
  p.Arm(FaultSpec{0.0, 2, 0});  // every=2
  for (int i = 0; i < 10; ++i) (void)p.Check();
  EXPECT_EQ(p.hits(), 10u);
  EXPECT_EQ(p.fires(), 5u);
  EXPECT_EQ(p.cumulative_hits(), 10u);
  EXPECT_EQ(p.cumulative_fires(), 5u);

  p.Disarm();
  for (int i = 0; i < 4; ++i) (void)p.Check();  // disarmed: counts nothing
  EXPECT_EQ(p.cumulative_hits(), 10u);

  p.Arm(FaultSpec{0.0, 2, 0});
  for (int i = 0; i < 10; ++i) (void)p.Check();
  EXPECT_EQ(p.hits(), 10u) << "per-arm counters reset";
  EXPECT_EQ(p.fires(), 5u);
  EXPECT_EQ(p.cumulative_hits(), 20u) << "lifetime totals must not";
  EXPECT_EQ(p.cumulative_fires(), 10u);
  EXPECT_EQ(p.cumulative_suppressed(), 10u);
}

TEST(FaultPlaneTest, StatusTextShowsCumulativeCounts) {
  FaultPlane plane(9);
  FaultPoint& p = plane.Point("swap.write_error");
  p.Arm(FaultSpec{0.0, 3, 0});
  for (int i = 0; i < 9; ++i) (void)p.Check();
  p.Arm(FaultSpec{0.0, 3, 0});  // resets hits/fires, keeps totals
  for (int i = 0; i < 3; ++i) (void)p.Check();
  const std::string status = plane.StatusText();
  EXPECT_NE(status.find("hits=3"), std::string::npos) << status;
  EXPECT_NE(status.find("fires=1"), std::string::npos) << status;
  EXPECT_NE(status.find("fired=4"), std::string::npos) << status;
  EXPECT_NE(status.find("suppressed=8"), std::string::npos) << status;
}

TEST(FaultPlaneTest, WellKnownPointsCatalogIsCompleteAndDistinct) {
  const auto& points = fault::WellKnownPoints();
  EXPECT_EQ(points.size(), 11u);
  std::set<std::string_view> unique(points.begin(), points.end());
  EXPECT_EQ(unique.size(), points.size());
  for (const std::string_view name : points) {
    EXPECT_NE(name.find('.'), std::string_view::npos) << name;
  }
}

TEST(FaultPlaneTest, SameSeedSameSchedulePerPoint) {
  FaultPlane a(42), b(42);
  a.Point("swap.write_error").Arm(FaultSpec{0.25, 0, 0});
  b.Point("swap.write_error").Arm(FaultSpec{0.25, 0, 0});
  EXPECT_EQ(Schedule(a.Point("swap.write_error"), 500),
            Schedule(b.Point("swap.write_error"), 500));
}

TEST(FaultPlaneTest, StreamsIndependentAcrossPoints) {
  // Interleaving checks on another point must not shift a point's stream.
  FaultPlane a(42), b(42);
  a.Point("one").Arm(FaultSpec{0.25, 0, 0});
  b.Point("one").Arm(FaultSpec{0.25, 0, 0});
  b.Point("two").Arm(FaultSpec{0.5, 0, 0});
  std::vector<bool> from_a, from_b;
  for (int i = 0; i < 500; ++i) {
    from_a.push_back(a.Point("one").Check());
    (void)b.Point("two").Check();
    from_b.push_back(b.Point("one").Check());
  }
  EXPECT_EQ(from_a, from_b);
}

TEST(FaultPlaneTest, ReseedChangesThenReplays) {
  FaultPlane plane(1);
  plane.Point("x").Arm(FaultSpec{0.5, 0, 0});
  const std::vector<bool> seed1 = Schedule(plane.Point("x"), 300);
  plane.Reseed(2);
  plane.Point("x").Arm(FaultSpec{0.5, 0, 0});
  const std::vector<bool> seed2 = Schedule(plane.Point("x"), 300);
  EXPECT_NE(seed1, seed2);
  plane.Reseed(1);
  plane.Point("x").Arm(FaultSpec{0.5, 0, 0});
  EXPECT_EQ(Schedule(plane.Point("x"), 300), seed1);
}

TEST(FaultPlaneTest, ConfigureArmsAndStatusReflects) {
  FaultPlane plane(5);
  std::string error;
  ASSERT_TRUE(plane.Configure(
      "# arm the swap path\n"
      "swap.write_error p=0.2 every=100\n"
      "alloc.frame_fail once=3; thp.collapse_fail off\n",
      &error))
      << error;
  const FaultPoint* swap = plane.Find("swap.write_error");
  ASSERT_NE(swap, nullptr);
  EXPECT_DOUBLE_EQ(swap->spec().probability, 0.2);
  EXPECT_EQ(swap->spec().every_nth, 100u);
  ASSERT_NE(plane.Find("alloc.frame_fail"), nullptr);
  EXPECT_EQ(plane.Find("alloc.frame_fail")->spec().once_at, 3u);
  EXPECT_FALSE(plane.Find("thp.collapse_fail")->armed());
  const std::string status = plane.StatusText();
  EXPECT_NE(status.find("seed 5"), std::string::npos);
  EXPECT_NE(status.find("swap.write_error p=0.2 every=100"),
            std::string::npos);
  EXPECT_NE(status.find("thp.collapse_fail off"), std::string::npos);
}

TEST(FaultPlaneTest, ConfigureIsAllOrNothing) {
  FaultPlane plane(5);
  std::string error;
  EXPECT_FALSE(plane.Configure(
      "swap.write_error p=0.5\nalloc.frame_fail p=nonsense\n", &error));
  EXPECT_NE(error.find("line 2:"), std::string::npos);
  // Line 1 must not have been applied.
  const FaultPoint* swap = plane.Find("swap.write_error");
  EXPECT_TRUE(swap == nullptr || !swap->armed());
}

TEST(FaultPlaneTest, ConfigureRejectsBadDirectives) {
  FaultPlane plane(5);
  std::string error;
  EXPECT_FALSE(plane.Configure("swap.write_error", &error));
  EXPECT_FALSE(plane.Configure("x p=1.5", &error));
  EXPECT_FALSE(plane.Configure("x every=0", &error));
  EXPECT_FALSE(plane.Configure("x frequency=3", &error));
  EXPECT_FALSE(plane.Configure("seed notanumber", &error));
  EXPECT_NE(error.find("line 1:"), std::string::npos);
}

TEST(FaultPlaneTest, TelemetryCountsFires) {
  telemetry::MetricsRegistry registry;
  FaultPlane plane(5);
  plane.BindTelemetry(registry);
  plane.Point("x").Arm(FaultSpec{0.0, 2, 0});
  (void)Schedule(plane.Point("x"), 10);
  EXPECT_EQ(registry.GetCounter("fault.x.fires").value(), 5.0);
}

TEST(FaultFsTest, ControlFileRoundTrip) {
  dbgfs::PseudoFs fs;
  FaultPlane plane(11);
  dbgfs::FaultFs fault_fs(&fs, &plane);
  std::string error;
  EXPECT_TRUE(fs.Write("/fault", "swap.write_error p=0.1", &error)) << error;
  EXPECT_NE(fs.Read("/fault").value().find("swap.write_error p=0.1"),
            std::string::npos);
  EXPECT_FALSE(fs.Write("/fault", "swap.write_error p=2.0", &error));
  EXPECT_NE(error.find("line 1:"), std::string::npos);
  EXPECT_TRUE(fs.Write("/fault", "reset", &error));
  EXPECT_FALSE(plane.Point(kSwapWriteError).armed());
}

// --- End-to-end degradation -------------------------------------------------

workload::WorkloadProfile ColdHeavyProfile() {
  workload::WorkloadProfile p;
  p.name = "test/faults";
  p.suite = "test";
  p.data_bytes = 96 * MiB;
  p.runtime_s = 12;
  p.noise = 0;
  p.groups = {workload::GroupSpec{0.25, 0.0, 1.0, 0.3},
              workload::GroupSpec{0.75, -1.0, 1.0, 0.2}};
  return p;
}

struct E2eRun {
  sim::SystemMetrics metrics;
  SimTimeUs end_time = 0;
  std::uint64_t scheme_errors = 0;
  std::uint64_t used_frames = 0;
  std::uint64_t used_slots = 0;
  std::uint64_t resident = 0;
  std::uint64_t swapped = 0;
  bool page_state_consistent = true;
  double swap_error_metric = 0.0;
};

E2eRun RunPrclUnderFaults(FaultPlane* plane) {
  sim::System system(sim::MachineSpec::I3Metal().GuestOf(),
                     sim::SwapConfig::Zram(), sim::ThpMode::kNever,
                     5 * kUsPerMs);
  if (plane != nullptr) system.SetFaultPlane(plane);
  telemetry::MetricsRegistry registry;
  system.AttachTelemetry(&registry);

  const workload::WorkloadProfile profile = ColdHeavyProfile();
  sim::Process& proc = system.AddProcess(workload::ToProcessParams(profile),
                                         workload::MakeSource(profile, 31));
  dbgfs::PseudoFs fs;
  dbgfs::DamonDbgfs damon_fs(&system, &fs);
  EXPECT_TRUE(fs.Write("/damon/target_ids", std::to_string(proc.pid())));
  EXPECT_TRUE(fs.Write("/damon/schemes", "min max min min 2s max pageout\n"));
  EXPECT_TRUE(fs.Write("/damon/monitor_on", "on"));

  E2eRun run;
  run.metrics = system.Run(60 * kUsPerSec);
  run.end_time = system.Now();
  for (const damos::Scheme& s : damon_fs.engine().schemes())
    run.scheme_errors += s.stats().nr_errors;
  run.used_frames = system.machine().used_frames();
  run.used_slots = system.machine().swap().used_slots();
  for (const auto& p : system.processes()) {
    const sim::AddressSpace& space = p->space();
    run.resident += space.resident_pages();
    run.swapped += space.swapped_pages();
    for (const sim::Vma& vma : space.vmas()) {
      for (std::size_t i = 0; i < vma.page_count(); ++i) {
        const auto pg = vma.PageAt(vma.AddrOfIndex(i));
        if (pg.Present() && pg.Swapped()) run.page_state_consistent = false;
      }
    }
  }
  run.swap_error_metric = registry.GetCounter("sim.swap.errors").value();
  return run;
}

TEST(FaultE2eTest, SwapWriteErrorsDegradeGracefully) {
  FaultPlane plane(2024);
  plane.Point(kSwapWriteError).Arm(FaultSpec{0.2, 0, 0});
  const E2eRun run = RunPrclUnderFaults(&plane);

  // The run completes and the injected failures surface everywhere they
  // should: machine counters, telemetry, and per-scheme stats.
  ASSERT_FALSE(run.metrics.processes.empty());
  EXPECT_GT(run.metrics.swap_write_errors, 0u);
  EXPECT_GT(run.swap_error_metric, 0.0);
  EXPECT_GT(run.scheme_errors, 0u);
  EXPECT_GT(plane.Point(kSwapWriteError).fires(), 0u);

  // Graceful: no leaked frames, no double-mapped pages. Every used frame
  // belongs to a resident page and every swap slot to a swapped page.
  EXPECT_TRUE(run.page_state_consistent);
  EXPECT_EQ(run.used_frames, run.resident);
  EXPECT_EQ(run.used_slots, run.swapped);
}

TEST(FaultE2eTest, DisarmedPlaneIsBitIdentical) {
  FaultPlane plane(2024);  // points resolve but never arm
  const E2eRun without = RunPrclUnderFaults(nullptr);
  const E2eRun with = RunPrclUnderFaults(&plane);

  EXPECT_EQ(with.end_time, without.end_time);
  EXPECT_EQ(with.used_frames, without.used_frames);
  EXPECT_EQ(with.used_slots, without.used_slots);
  EXPECT_EQ(with.resident, without.resident);
  EXPECT_EQ(with.swapped, without.swapped);
  EXPECT_EQ(with.metrics.reclaimed_pages, without.metrics.reclaimed_pages);
  EXPECT_EQ(with.metrics.swap_ins, without.metrics.swap_ins);
  EXPECT_EQ(with.metrics.swap_outs, without.metrics.swap_outs);
  EXPECT_EQ(with.metrics.swap_write_errors, 0u);
  EXPECT_EQ(with.metrics.oom_kills, 0u);
  ASSERT_EQ(with.metrics.processes.size(), without.metrics.processes.size());
  for (std::size_t i = 0; i < with.metrics.processes.size(); ++i) {
    EXPECT_DOUBLE_EQ(with.metrics.processes[i].runtime_s,
                     without.metrics.processes[i].runtime_s);
  }
}

}  // namespace
}  // namespace daos::fault
