#include "autotune/score.hpp"

#include <gtest/gtest.h>

namespace daos::autotune {
namespace {

constexpr TrialMeasurement kBaseline{100.0, 1000.0};

TEST(RawScoreTest, NoChangeIsZero) {
  EXPECT_DOUBLE_EQ(RawScore(kBaseline, kBaseline), 0.0);
}

TEST(RawScoreTest, PureMemorySaving) {
  // 40 % RSS saving, no slowdown: equal weights -> +20 points.
  const TrialMeasurement t{100.0, 600.0};
  EXPECT_NEAR(RawScore(t, kBaseline), 20.0, 1e-9);
}

TEST(RawScoreTest, PureSlowdown) {
  // 20 % slower, no saving -> -10 points.
  const TrialMeasurement t{120.0, 1000.0};
  EXPECT_NEAR(RawScore(t, kBaseline), -10.0, 1e-9);
}

TEST(RawScoreTest, WeightsRespected) {
  const TrialMeasurement t{110.0, 500.0};
  // perf: -0.1, mem: +0.5.
  EXPECT_NEAR(RawScore(t, kBaseline, 1.0, 0.0), -10.0, 1e-9);
  EXPECT_NEAR(RawScore(t, kBaseline, 0.0, 1.0), 50.0, 1e-9);
}

TEST(RawScoreTest, ZeroBaselineSafe) {
  EXPECT_DOUBLE_EQ(RawScore(kBaseline, TrialMeasurement{0.0, 0.0}), 0.0);
}

TEST(DefaultScoreTest, WithinSlaMatchesRawScore) {
  DefaultScoreFunction fn;
  const TrialMeasurement t{105.0, 700.0};  // 5 % drop: within 10 % SLA
  EXPECT_NEAR(fn.Score(t, kBaseline), RawScore(t, kBaseline), 1e-9);
}

TEST(DefaultScoreTest, SlaViolationReturnsWorstSeen) {
  // Listing 2: once the SLA is broken, return min(prev_scores).
  DefaultScoreFunction fn;
  const double s1 = fn.Score(TrialMeasurement{101.0, 900.0}, kBaseline);
  const double s2 = fn.Score(TrialMeasurement{104.0, 500.0}, kBaseline);
  const double worst = std::min(s1, s2);
  const double violation =
      fn.Score(TrialMeasurement{150.0, 100.0}, kBaseline);  // 50 % drop
  EXPECT_DOUBLE_EQ(violation, worst);
}

TEST(DefaultScoreTest, SlaViolationFirstHasFloor) {
  DefaultScoreFunction fn;
  const double v = fn.Score(TrialMeasurement{200.0, 100.0}, kBaseline);
  EXPECT_LE(v, 0.0);  // never rewarded
}

TEST(DefaultScoreTest, ExactlyTenPercentDropViolates) {
  // Listing 2 uses strict ">": pscore == -0.1 is NOT within the SLA.
  DefaultScoreFunction fn;
  const double good = fn.Score(TrialMeasurement{109.9, 500.0}, kBaseline);
  EXPECT_GT(good, 0.0);
  const double edge = fn.Score(TrialMeasurement{110.0, 1.0}, kBaseline);
  EXPECT_DOUBLE_EQ(edge, good);  // falls back to best==worst==good
}

TEST(DefaultScoreTest, ResetClearsHistory) {
  DefaultScoreFunction fn;
  fn.Score(TrialMeasurement{101.0, 200.0}, kBaseline);  // big positive
  fn.Reset();
  // After reset, a violation cannot return the old positive score.
  const double v = fn.Score(TrialMeasurement{200.0, 100.0}, kBaseline);
  EXPECT_LE(v, 0.0);
}

TEST(DefaultScoreTest, CustomSla) {
  DefaultScoreFunction strict(0.5, 0.5, /*sla=*/0.02);
  strict.Score(TrialMeasurement{100.0, 900.0}, kBaseline);
  // 5 % drop violates a 2 % SLA.
  const double v = strict.Score(TrialMeasurement{105.0, 100.0}, kBaseline);
  EXPECT_NEAR(v, 5.0, 1e-9);  // worst seen: the first sample's score
}

}  // namespace
}  // namespace daos::autotune
