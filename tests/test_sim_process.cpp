#include "sim/process.hpp"

#include <gtest/gtest.h>

#include "sim/machine.hpp"
#include "sim/system.hpp"

namespace daos::sim {
namespace {

/// Touches a fixed range every quantum.
class FixedSource final : public AccessSource {
 public:
  explicit FixedSource(std::uint64_t pages) : pages_(pages) {}

  // Huge-page aligned so PromoteRange can work on it.
  static constexpr Addr kBase = 2 * kHugePageSize;

  void BuildLayout(AddressSpace& space) override {
    space.Map(kBase, pages_ * kPageSize, "data");
  }
  TouchStats EmitQuantum(AddressSpace& space, SimTimeUs now,
                         SimTimeUs) override {
    return space.TouchRange(kBase, kBase + pages_ * kPageSize, false, now);
  }

 private:
  std::uint64_t pages_;
};

/// Never touches anything (pure CPU burner).
class IdleSource final : public AccessSource {
 public:
  void BuildLayout(AddressSpace& space) override {
    space.Map(0x10000, kPageSize, "stub");
  }
  TouchStats EmitQuantum(AddressSpace&, SimTimeUs, SimTimeUs) override {
    return {};
  }
};

ProcessParams Params(double work_s, bool forever = false) {
  ProcessParams p;
  p.name = "test";
  p.total_work_us = work_s * kUsPerSec;
  p.run_forever = forever;
  p.mem_boundness = 1.0;
  return p;
}

TEST(ProcessTest, FinishesAfterNominalWork) {
  Machine machine(MachineSpec{"t", 4, 3.0, GiB}, SwapConfig::Zram());
  Process proc(Params(0.010), &machine, 1, std::make_unique<IdleSource>());
  SimTimeUs now = 0;
  bool finished = false;
  for (int i = 0; i < 20 && !finished; ++i, now += kUsPerMs)
    finished = proc.RunQuantum(now, kUsPerMs);
  EXPECT_TRUE(finished);
  // 10 ms of work at reference speed with no stalls: exactly 10 quanta.
  EXPECT_NEAR(proc.Metrics(now).runtime_s, 0.010, 1e-9);
}

TEST(ProcessTest, FasterCpuFinishesSooner) {
  Machine slow(MachineSpec{"s", 4, 3.0, GiB}, SwapConfig::Zram());
  Machine fast(MachineSpec{"f", 4, 4.0, GiB}, SwapConfig::Zram());
  Process a(Params(0.1), &slow, 1, std::make_unique<IdleSource>());
  Process b(Params(0.1), &fast, 1, std::make_unique<IdleSource>());
  SimTimeUs now = 0;
  while (!a.finished() || !b.finished()) {
    a.RunQuantum(now, kUsPerMs);
    b.RunQuantum(now, kUsPerMs);
    now += kUsPerMs;
    ASSERT_LT(now, kUsPerSec);
  }
  EXPECT_LT(b.Metrics(now).runtime_s, a.Metrics(now).runtime_s);
  EXPECT_NEAR(b.Metrics(now).runtime_s / a.Metrics(now).runtime_s, 0.75,
              0.05);
}

TEST(ProcessTest, StallDebtExtendsRuntime) {
  Machine machine(MachineSpec{"t", 4, 3.0, GiB}, SwapConfig::Zram());
  Process clean(Params(0.02), &machine, 1, std::make_unique<IdleSource>());
  Process stalled(Params(0.02), &machine, 2, std::make_unique<IdleSource>());
  stalled.AddInterference(5000.0);  // 5 ms of injected stall
  SimTimeUs now = 0;
  while (!clean.finished() || !stalled.finished()) {
    clean.RunQuantum(now, kUsPerMs);
    stalled.RunQuantum(now, kUsPerMs);
    now += kUsPerMs;
    ASSERT_LT(now, kUsPerSec);
  }
  EXPECT_NEAR(stalled.Metrics(now).runtime_s - clean.Metrics(now).runtime_s,
              0.005, 0.0015);
}

TEST(ProcessTest, InterferenceScaledByMemBoundness) {
  Machine machine(MachineSpec{"t", 4, 3.0, GiB}, SwapConfig::Zram());
  ProcessParams p = Params(1.0);
  p.mem_boundness = 0.25;
  Process proc(std::move(p), &machine, 1, std::make_unique<IdleSource>());
  proc.AddInterference(1000.0);
  EXPECT_NEAR(proc.Metrics(0).interference_s, 0.00025, 1e-9);
}

TEST(ProcessTest, RunForeverNeverFinishes) {
  Machine machine(MachineSpec{"t", 4, 3.0, GiB}, SwapConfig::Zram());
  Process proc(Params(0.001, /*forever=*/true), &machine, 1,
               std::make_unique<IdleSource>());
  SimTimeUs now = 0;
  for (int i = 0; i < 100; ++i, now += kUsPerMs)
    EXPECT_FALSE(proc.RunQuantum(now, kUsPerMs));
  EXPECT_FALSE(proc.finished());
}

TEST(ProcessTest, RssTracked) {
  Machine machine(MachineSpec{"t", 4, 3.0, GiB}, SwapConfig::Zram());
  Process proc(Params(0.05), &machine, 1, std::make_unique<FixedSource>(64));
  SimTimeUs now = 0;
  while (!proc.finished()) {
    proc.RunQuantum(now, kUsPerMs);
    now += kUsPerMs;
    ASSERT_LT(now, kUsPerSec);
  }
  const ProcessMetrics m = proc.Metrics(now);
  EXPECT_EQ(m.peak_rss_bytes, 64 * kPageSize);
  EXPECT_NEAR(m.avg_rss_bytes, 64.0 * kPageSize, static_cast<double>(kPageSize));
  EXPECT_EQ(proc.ReadRssBytes(), 64 * kPageSize);
}

TEST(ProcessTest, ThpGainSpeedsUp) {
  // Two identical processes; one gets its pages promoted to huge.
  Machine machine(MachineSpec{"t", 4, 3.0, GiB}, SwapConfig::Zram());
  ProcessParams with_gain = Params(0.1);
  with_gain.thp_gain = 0.5;
  Process base(Params(0.1), &machine, 1,
               std::make_unique<FixedSource>(kPagesPerHuge));
  Process boosted(std::move(with_gain), &machine, 2,
                  std::make_unique<FixedSource>(kPagesPerHuge));
  // First quantum builds layouts; then promote the boosted one's pages.
  base.RunQuantum(0, kUsPerMs);
  boosted.RunQuantum(0, kUsPerMs);
  boosted.space().PromoteRange(FixedSource::kBase,
                               FixedSource::kBase + kHugePageSize, 0);
  SimTimeUs now = kUsPerMs;
  while (!base.finished() || !boosted.finished()) {
    base.RunQuantum(now, kUsPerMs);
    boosted.RunQuantum(now, kUsPerMs);
    now += kUsPerMs;
    ASSERT_LT(now, kUsPerSec);
  }
  EXPECT_LT(boosted.Metrics(now).runtime_s, base.Metrics(now).runtime_s);
}

TEST(ProcessTest, MetricsBeforeStartAreZero) {
  Machine machine(MachineSpec{"t", 4, 3.0, GiB}, SwapConfig::Zram());
  Process proc(Params(1.0), &machine, 1, std::make_unique<IdleSource>());
  const ProcessMetrics m = proc.Metrics(0);
  EXPECT_FALSE(m.finished);
  EXPECT_DOUBLE_EQ(m.runtime_s, 0.0);
}

}  // namespace
}  // namespace daos::sim
