#include "telemetry/export.hpp"

#include <gtest/gtest.h>

namespace daos::telemetry {
namespace {

TEST(PrometheusExportTest, GoldenCounterAndGauge) {
  MetricsRegistry reg;
  reg.GetCounter("damon.ctx0.samples").Add(1234);
  reg.GetGauge("sim.dram_used_bytes").Set(4096);
  reg.GetGauge("autotune.last_score").Set(0.125);
  EXPECT_EQ(ToPrometheusText(reg),
            "# TYPE autotune_last_score gauge\n"
            "autotune_last_score 0.125\n"
            "# TYPE damon_ctx0_samples counter\n"
            "damon_ctx0_samples 1234\n"
            "# TYPE sim_dram_used_bytes gauge\n"
            "sim_dram_used_bytes 4096\n");
}

TEST(PrometheusExportTest, GoldenHistogramCumulativeBuckets) {
  MetricsRegistry reg;
  Histogram& h = reg.GetHistogram("sim.swap.out_latency_us", {10.0, 100.0});
  h.Observe(5.0);
  h.Observe(50.0);
  h.Observe(500.0);
  h.Observe(7.0);
  EXPECT_EQ(ToPrometheusText(reg),
            "# TYPE sim_swap_out_latency_us histogram\n"
            "sim_swap_out_latency_us_bucket{le=\"10\"} 2\n"
            "sim_swap_out_latency_us_bucket{le=\"100\"} 3\n"
            "sim_swap_out_latency_us_bucket{le=\"+Inf\"} 4\n"
            "sim_swap_out_latency_us_sum 562\n"
            "sim_swap_out_latency_us_count 4\n");
}

TEST(PrometheusExportTest, SanitizesMetricNames) {
  MetricsRegistry reg;
  reg.GetCounter("a.b-c/d e").Add(1);
  const std::string out = ToPrometheusText(reg);
  EXPECT_NE(out.find("a_b_c_d_e 1\n"), std::string::npos);
  EXPECT_EQ(out.find('.'), std::string::npos);
}

TEST(PrometheusExportTest, NonIntegerValuesUseCompactForm) {
  MetricsRegistry reg;
  reg.GetGauge("g").Set(0.3333333333);
  EXPECT_EQ(ToPrometheusText(reg),
            "# TYPE g gauge\n"
            "g 0.333333\n");
}

TEST(PrometheusExportTest, EmptyRegistryEmptyOutput) {
  MetricsRegistry reg;
  EXPECT_EQ(ToPrometheusText(reg), "");
}

}  // namespace
}  // namespace daos::telemetry
