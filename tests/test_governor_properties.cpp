// Governor property tests (labeled "governor;property"): end-to-end
// invariants of quota enforcement, prioritization, and watermark gating on
// a live monitor + engine, plus the bit-identity guarantee for disarmed
// schemes.
//
// Every scenario arms the environment fault plane (DAOS_FAULTS) on its
// machine, so the CI fault-stress job exercises the same invariants with
// swap.write_error injected: quota accounting is attempt-based, so a
// failing swap device must never let a scheme overdraw its window.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>

#include "damon/monitor.hpp"
#include "damon/primitives.hpp"
#include "damos/engine.hpp"
#include "fault/fault.hpp"
#include "governor/governor.hpp"
#include "sim/address_space.hpp"
#include "sim/machine.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace_buffer.hpp"
#include "util/units.hpp"

namespace daos::damos {
namespace {

constexpr Addr kBase = 0x10000000;
constexpr std::uint64_t kHeap = 64 * MiB;
constexpr std::uint64_t kHot = 8 * MiB;
constexpr std::uint64_t kQuota = 4 * MiB;

// ---------------------------------------------------------------------------
// Quota: per-window charge never exceeds the budget
// ---------------------------------------------------------------------------

TEST(GovernorPropertyTest, PerWindowChargeNeverExceedsQuota) {
  std::unique_ptr<fault::FaultPlane> faults = fault::FaultPlane::FromEnv();
  sim::Machine machine(sim::MachineSpec{"gov", 4, 3.0, 4 * GiB},
                       sim::SwapConfig::Zram());
  if (faults != nullptr) machine.SetFaultPlane(faults.get());
  sim::AddressSpace space(1, &machine, 3.0);
  space.Map(kBase, kHeap, "heap");
  space.TouchRange(kBase, kBase + kHeap, true, 0);

  damon::DamonContext ctx(damon::MonitoringAttrs::PaperDefaults(),
                          /*seed=*/42);
  ctx.AddTarget(std::make_unique<damon::VaddrPrimitives>(&space));
  SchemesEngine engine;
  engine.SetMachine(&machine);
  engine.Attach(ctx);
  ASSERT_TRUE(engine.InstallFromText(
      "min max min min 2s max pageout quota_sz=4M quota_reset_ms=1000\n"));

  // `total_charged_sz - charged_sz` is exactly the charge accumulated in
  // *completed* windows (rolls zero the window charge, never the lifetime
  // total), so its delta between two rolls is the closed window's charge.
  const governor::QuotaState& qs = engine.governor().quota_state(0);
  std::uint64_t completed_prev = 0;
  std::uint64_t closed_windows = 0;
  for (SimTimeUs now = 0; now < 8 * kUsPerSec;
       now += ctx.attrs().sampling_interval) {
    ctx.Step(now, ctx.attrs().sampling_interval);
    // The in-flight window must never be overdrawn — the ISSUE bound is
    // "quota + one region"; attempt clipping makes it exact.
    ASSERT_LE(qs.charged_sz, kQuota);
    const std::uint64_t completed = qs.total_charged_sz - qs.charged_sz;
    if (completed != completed_prev) {
      ASSERT_LE(completed - completed_prev, kQuota);
      completed_prev = completed;
      ++closed_windows;
    }
  }

  const SchemeStats& st = engine.schemes()[0].stats();
  // The 64M heap against a 4M/s budget must hit the wall repeatedly...
  EXPECT_GT(st.qt_exceeds, 0u);
  EXPECT_GT(st.sz_quota_exceeded, 0u);
  EXPECT_GE(closed_windows, 3u);
  // ...and applied bytes can only trail the attempt-based charges, even
  // when an injected swap.write_error eats part of the work.
  EXPECT_GT(qs.total_charged_sz, 0u);
  EXPECT_LE(st.sz_applied, qs.total_charged_sz);
}

// ---------------------------------------------------------------------------
// Prioritization: an insufficient budget is reordered, not spent
// address-first
// ---------------------------------------------------------------------------

struct SpendProfile {
  std::uint64_t hot = 0;    // applied-range bytes inside the hot span
  std::uint64_t total = 0;  // applied-range bytes overall
};

// Runs a 2s monitor-only burn-in (so DAMON can tell the hot span from the
// cold rest), installs `scheme_line`, drives 5 more seconds, and folds the
// kSchemeApply trace events into per-span spend totals.
SpendProfile RunSpend(const std::string& scheme_line, Addr hot_start,
                      Addr hot_end) {
  std::unique_ptr<fault::FaultPlane> faults = fault::FaultPlane::FromEnv();
  sim::Machine machine(sim::MachineSpec{"gov", 4, 3.0, 4 * GiB},
                       sim::SwapConfig::Zram());
  if (faults != nullptr) machine.SetFaultPlane(faults.get());
  sim::AddressSpace space(1, &machine, 3.0);
  space.Map(kBase, kHeap, "heap");
  space.TouchRange(kBase, kBase + kHeap, true, 0);

  damon::DamonContext ctx(damon::MonitoringAttrs::PaperDefaults(),
                          /*seed=*/42);
  ctx.AddTarget(std::make_unique<damon::VaddrPrimitives>(&space));
  SchemesEngine engine;
  engine.SetMachine(&machine);
  engine.Attach(ctx);
  telemetry::MetricsRegistry registry;
  telemetry::TraceBuffer trace(1 << 16);
  engine.BindTelemetry(registry, &trace);

  SimTimeUs now = 0;
  for (; now < 2 * kUsPerSec; now += ctx.attrs().sampling_interval) {
    space.TouchRange(hot_start, hot_end, false, now);
    ctx.Step(now, ctx.attrs().sampling_interval);
  }
  EXPECT_TRUE(engine.InstallFromText(scheme_line + "\n"));
  for (; now < 7 * kUsPerSec; now += ctx.attrs().sampling_interval) {
    space.TouchRange(hot_start, hot_end, false, now);
    ctx.Step(now, ctx.attrs().sampling_interval);
  }

  SpendProfile p;
  for (const telemetry::TraceEvent& ev : trace.Events()) {
    if (ev.kind != telemetry::EventKind::kSchemeApply) continue;
    p.total += ev.arg1 - ev.arg0;  // arg0..1 = quota-clipped applied range
    const Addr lo = std::max<Addr>(ev.arg0, hot_start);
    const Addr hi = std::min<Addr>(ev.arg1, hot_end);
    if (hi > lo) p.hot += hi - lo;
  }
  return p;
}

TEST(GovernorPropertyTest, ColdFirstReclaimSparesTheHotHead) {
  // Hot span at the *lowest* addresses: exactly where an address-order
  // walk would spend the constrained budget first.
  const SpendProfile prio = RunSpend(
      "min max min max min max pageout quota_sz=4M quota_reset_ms=1000"
      " prio_weights=0,10,0",
      kBase, kBase + kHot);
  const SpendProfile base = RunSpend(
      "min max min max min max pageout quota_sz=4M quota_reset_ms=1000",
      kBase, kBase + kHot);

  ASSERT_GT(prio.total, 0u);
  ASSERT_GT(base.total, 0u);
  // Ungoverned order reclaims the hot head; frequency-weighted cold-first
  // prioritization redirects the same budget to the cold tail.
  EXPECT_GT(base.hot, 0u);
  EXPECT_LT(prio.hot, base.hot);
  EXPECT_LT(prio.hot * 4, prio.total);  // hot spend is a small minority
}

TEST(GovernorPropertyTest, HotFirstScoringTargetsTheHotTail) {
  // Promote-shaped scoring (non-inverted frequency — shared by willneed /
  // hugepage; the direction itself is unit-tested in test_governor.cpp)
  // demonstrated through `stat`, whose applied bytes are deterministic and
  // residency-independent. Hot span at the *highest* addresses, so
  // address order and hot-first disagree maximally.
  const SpendProfile prio = RunSpend(
      "min max min max min max stat quota_sz=4M quota_reset_ms=1000"
      " prio_weights=0,10,0",
      kBase + kHeap - kHot, kBase + kHeap);
  const SpendProfile base = RunSpend(
      "min max min max min max stat quota_sz=4M quota_reset_ms=1000",
      kBase + kHeap - kHot, kBase + kHeap);

  ASSERT_GT(prio.total, 0u);
  ASSERT_GT(base.total, 0u);
  // Address order never reaches the tail before the window budget runs
  // out; hot-first spends the majority of its budget there.
  EXPECT_GT(prio.hot * 2, prio.total);
  EXPECT_LT(base.hot * 2, base.total);
  EXPECT_GT(prio.hot, base.hot);
}

// ---------------------------------------------------------------------------
// Watermarks: a deactivated scheme tries nothing
// ---------------------------------------------------------------------------

TEST(GovernorPropertyTest, WatermarkDeactivationFreezesNrTried) {
  std::unique_ptr<fault::FaultPlane> faults = fault::FaultPlane::FromEnv();
  sim::Machine machine(sim::MachineSpec{"gov", 4, 3.0, 1 * GiB},
                       sim::SwapConfig::Zram());
  if (faults != nullptr) machine.SetFaultPlane(faults.get());
  sim::AddressSpace space(1, &machine, 3.0);
  space.Map(kBase, kHeap, "heap");
  space.TouchRange(kBase, kBase + kHeap, true, 0);

  damon::DamonContext ctx(damon::MonitoringAttrs::PaperDefaults(),
                          /*seed=*/42);
  ctx.AddTarget(std::make_unique<damon::VaddrPrimitives>(&space));
  SchemesEngine engine;
  engine.SetMachine(&machine);
  engine.Attach(ctx);
  ASSERT_TRUE(engine.InstallFromText(
      "min max min min min max pageout"
      " wmarks=free_mem_rate,800,500,100 wmark_interval_ms=100\n"));

  SimTimeUs now = 0;
  auto run_until = [&](SimTimeUs end) {
    for (; now < end; now += ctx.attrs().sampling_interval)
      ctx.Step(now, ctx.attrs().sampling_interval);
  };

  // Phase A — only the 64M heap is resident, free_mem_rate ~937‰ > high:
  // the gate must deactivate on the very first pass and nr_tried stay 0.
  run_until(2 * kUsPerSec);
  const SchemeStats& st = engine.schemes()[0].stats();
  EXPECT_EQ(st.nr_tried, 0u);
  EXPECT_FALSE(st.wmark_active);
  EXPECT_EQ(st.nr_wmark_deactivations, 1u);

  // Phase B — synthetic pressure pushes free below mid (500‰): the gate
  // re-arms and the scheme starts trying regions.
  const std::uint64_t kPressureFrames = 150000;  // ~586M extra used
  machine.ChargeFrames(kPressureFrames);
  run_until(4 * kUsPerSec);
  EXPECT_TRUE(st.wmark_active);
  EXPECT_GT(st.nr_tried, 0u);

  // Phase C — pressure released, free back above high: deactivated again,
  // nr_tried frozen for the rest of the run.
  machine.UnchargeFrames(kPressureFrames);
  const std::uint64_t tried_at_release = st.nr_tried;
  run_until(6 * kUsPerSec);
  EXPECT_EQ(st.nr_tried, tried_at_release);
  EXPECT_FALSE(st.wmark_active);
  EXPECT_GE(st.nr_wmark_deactivations, 2u);
  EXPECT_FALSE(engine.governor().wmark_active(0));
}

// ---------------------------------------------------------------------------
// Disarmed schemes are bit-identical to the pre-governor engine
// ---------------------------------------------------------------------------

TEST(GovernorPropertyTest, DisarmedSchemeMatchesPreGovernorGoldens) {
  if (std::getenv("DAOS_FAULTS") != nullptr)
    GTEST_SKIP() << "golden numbers assume a fault-free run";

  // The exact scenario used to capture the goldens on the pre-governor
  // engine (commit 972e060): 64M heap, 8M re-touched head, Prcl(2s) for
  // 6 simulated seconds. A disarmed policy must take a single branch and
  // change nothing — down to the last byte and page.
  sim::Machine machine(sim::MachineSpec{"t", 4, 3.0, 4 * GiB},
                       sim::SwapConfig::Zram());
  sim::AddressSpace space(1, &machine, 3.0);
  space.Map(kBase, kHeap, "heap");
  damon::DamonContext ctx(damon::MonitoringAttrs::PaperDefaults(),
                          /*seed=*/42);
  ctx.AddTarget(std::make_unique<damon::VaddrPrimitives>(&space));
  SchemesEngine engine;
  engine.Install({Scheme::Prcl(2 * kUsPerSec)});
  engine.Attach(ctx);
  space.TouchRange(kBase, kBase + kHeap, true, 0);
  for (SimTimeUs now = 0; now < 6 * kUsPerSec;
       now += ctx.attrs().sampling_interval) {
    space.TouchRange(kBase, kBase + kHot, false, now);
    ctx.Step(now, ctx.attrs().sampling_interval);
  }

  const SchemeStats& st = engine.schemes()[0].stats();
  EXPECT_EQ(space.swapped_pages(), 14331u);
  EXPECT_EQ(space.resident_pages(), 2053u);
  EXPECT_EQ(st.nr_tried, 1031u);
  EXPECT_EQ(st.sz_tried, 2165346304u);
  EXPECT_EQ(st.nr_applied, 28u);
  EXPECT_EQ(st.sz_applied, 58699776u);
}

}  // namespace
}  // namespace daos::damos
