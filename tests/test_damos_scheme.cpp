#include "damos/scheme.hpp"

#include <gtest/gtest.h>

namespace daos::damos {
namespace {

damon::MonitoringAttrs PaperAttrs() {
  return damon::MonitoringAttrs::PaperDefaults();  // 20 checks/aggregation
}

damon::Region MakeRegion(std::uint64_t size, std::uint32_t nr_accesses,
                         std::uint32_t age) {
  damon::Region r;
  r.start = 0x1000000;
  r.end = r.start + size;
  r.nr_accesses = nr_accesses;
  r.age = age;
  return r;
}

TEST(FreqBoundTest, PercentToSamples) {
  const auto attrs = PaperAttrs();
  EXPECT_DOUBLE_EQ(FreqBound::Percent(0.5).ToSamples(attrs), 10.0);
  EXPECT_DOUBLE_EQ(FreqBound::MaxValue().ToSamples(attrs), 20.0);
  EXPECT_DOUBLE_EQ(FreqBound::MinValue().ToSamples(attrs), 0.0);
}

TEST(FreqBoundTest, SamplesPassThrough) {
  EXPECT_DOUBLE_EQ(FreqBound::Samples(5).ToSamples(PaperAttrs()), 5.0);
}

TEST(SchemeMatchTest, SizeBounds) {
  SchemeBounds b;
  b.min_size = 2 * MiB;
  b.max_size = 8 * MiB;
  Scheme scheme(b);
  EXPECT_FALSE(scheme.Matches(MakeRegion(1 * MiB, 0, 0), PaperAttrs()));
  EXPECT_TRUE(scheme.Matches(MakeRegion(2 * MiB, 0, 0), PaperAttrs()));
  EXPECT_TRUE(scheme.Matches(MakeRegion(8 * MiB, 0, 0), PaperAttrs()));
  EXPECT_FALSE(scheme.Matches(MakeRegion(9 * MiB, 0, 0), PaperAttrs()));
}

TEST(SchemeMatchTest, FrequencyBounds) {
  SchemeBounds b;
  b.min_freq = FreqBound::Percent(0.5);  // >= 10 samples of 20
  Scheme scheme(b);
  EXPECT_FALSE(scheme.Matches(MakeRegion(MiB, 9, 0), PaperAttrs()));
  EXPECT_TRUE(scheme.Matches(MakeRegion(MiB, 10, 0), PaperAttrs()));

  SchemeBounds zero_only;
  zero_only.max_freq = FreqBound::MinValue();
  Scheme idle(zero_only);
  EXPECT_TRUE(idle.Matches(MakeRegion(MiB, 0, 0), PaperAttrs()));
  EXPECT_FALSE(idle.Matches(MakeRegion(MiB, 1, 0), PaperAttrs()));
}

TEST(SchemeMatchTest, AgeBoundsInTimeUnits) {
  SchemeBounds b;
  b.min_age = 2 * kUsPerSec;  // with 100 ms aggregation: age >= 20
  Scheme scheme(b);
  EXPECT_FALSE(scheme.Matches(MakeRegion(MiB, 0, 19), PaperAttrs()));
  EXPECT_TRUE(scheme.Matches(MakeRegion(MiB, 0, 20), PaperAttrs()));

  SchemeBounds young_only;
  young_only.max_age = kUsPerSec;  // age <= 10
  Scheme young(young_only);
  EXPECT_TRUE(young.Matches(MakeRegion(MiB, 0, 10), PaperAttrs()));
  EXPECT_FALSE(young.Matches(MakeRegion(MiB, 0, 11), PaperAttrs()));
}

TEST(SchemeMatchTest, UnboundedMatchesEverything) {
  Scheme scheme{SchemeBounds{}};
  EXPECT_TRUE(scheme.Matches(MakeRegion(kPageSize, 0, 0), PaperAttrs()));
  EXPECT_TRUE(scheme.Matches(MakeRegion(GiB, 20, 100000), PaperAttrs()));
}

TEST(SchemeFactoryTest, PrclShape) {
  const Scheme prcl = Scheme::Prcl(5 * kUsPerSec);
  EXPECT_EQ(prcl.action(), damon::DamosAction::kPageout);
  // Matches idle-for-5s regions only.
  EXPECT_TRUE(prcl.Matches(MakeRegion(MiB, 0, 50), PaperAttrs()));
  EXPECT_FALSE(prcl.Matches(MakeRegion(MiB, 0, 49), PaperAttrs()));
  EXPECT_FALSE(prcl.Matches(MakeRegion(MiB, 3, 50), PaperAttrs()));
}

TEST(SchemeFactoryTest, EthpShapes) {
  const Scheme promote = Scheme::EthpHugepage(5.0);
  EXPECT_EQ(promote.action(), damon::DamosAction::kHugepage);
  EXPECT_TRUE(promote.Matches(MakeRegion(4 * MiB, 5, 0), PaperAttrs()));
  EXPECT_FALSE(promote.Matches(MakeRegion(4 * MiB, 4, 0), PaperAttrs()));

  const Scheme demote = Scheme::EthpNohugepage(7 * kUsPerSec);
  EXPECT_EQ(demote.action(), damon::DamosAction::kNohugepage);
  EXPECT_TRUE(demote.Matches(MakeRegion(4 * MiB, 0, 70), PaperAttrs()));
  EXPECT_FALSE(demote.Matches(MakeRegion(1 * MiB, 0, 70), PaperAttrs()));
  EXPECT_FALSE(demote.Matches(MakeRegion(4 * MiB, 10, 70), PaperAttrs()));
}

TEST(SchemeFactoryTest, WssStatCountsAccessedOnly) {
  const Scheme wss = Scheme::WssStat();
  EXPECT_EQ(wss.action(), damon::DamosAction::kStat);
  EXPECT_TRUE(wss.Matches(MakeRegion(MiB, 1, 0), PaperAttrs()));
  EXPECT_FALSE(wss.Matches(MakeRegion(MiB, 0, 0), PaperAttrs()));
}

TEST(SchemeTextTest, SerializesLikeTheListings) {
  EXPECT_EQ(Scheme::Prcl(5 * kUsPerSec).ToText(),
            "4.0K max min min 5s max pageout");
  EXPECT_EQ(Scheme::EthpNohugepage(7 * kUsPerSec).ToText(),
            "2.0M max min min 7s max nohugepage");
}

TEST(SchemeTextTest, PercentBoundsSerialized) {
  SchemeBounds b;
  b.min_size = 2 * MiB;
  b.min_freq = FreqBound::Percent(0.8);
  b.min_age = kUsPerMin;
  b.action = damon::DamosAction::kHugepage;
  // Listing 1 line 8: "2MB max 80% max 1m max thp".
  EXPECT_EQ(Scheme(b).ToText(), "2.0M max 80% max 1m max hugepage");
}

}  // namespace
}  // namespace daos::damos
