// Pinned chaos repros: every minimized repro the campaign engine produced
// during development becomes a permanent regression test. Each entry is
// the DAOS_FAULTS payload + seed + scenario exactly as the repro line
// printed it; the test replays the campaign and asserts the violation
// still reproduces (and stays minimal under the shrinker).
//
// When a new violation is found and minimized, append its repro here —
// the campaign text IS the regression test.
#include <gtest/gtest.h>

#include <string>

#include "chaos/engine.hpp"

namespace {

using namespace daos;

struct PinnedRepro {
  const char* faults;    // the DAOS_FAULTS payload of the repro line
  std::uint64_t seed;    // DAOS_FAULT_SEED
  const char* scenario;  // daos_chaos repro <scenario>
  const char* oracle;    // the oracle that must still trip
};

// The first minimized repros, from the engine's own known-bad mechanism:
// the synthetic probe point whose only legal behavior is to never fire.
// One per scenario driver, so each driver's slice loop + arming path is
// pinned end to end.
constexpr PinnedRepro kPinned[] = {
    {"chaos.synthetic once=2", 4242, "workload", "chaos.synthetic"},
    {"chaos.synthetic once=1", 17, "tiered", "chaos.synthetic"},
    {"chaos.synthetic once=3", 99, "lifecycle", "chaos.synthetic"},
    {"chaos.synthetic once=2", 7, "fleet", "chaos.synthetic"},
};

chaos::Campaign Rebuild(const PinnedRepro& pin) {
  chaos::Campaign campaign;
  campaign.seed = pin.seed;
  campaign.scenario = pin.scenario;
  std::string error;
  EXPECT_TRUE(chaos::ParseCampaign(pin.faults, &campaign, &error))
      << pin.faults << ": " << error;
  return campaign;
}

TEST(ChaosRepros, PinnedReprosStillViolate) {
  for (const PinnedRepro& pin : kPinned) {
    const chaos::Campaign campaign = Rebuild(pin);
    const chaos::ScenarioResult result = chaos::RunScenario(campaign);
    EXPECT_FALSE(result.ok())
        << pin.scenario << ": pinned repro no longer violates — the "
        << "arming/probe path regressed: " << pin.faults;
    bool oracle_tripped = false;
    for (const chaos::OracleCheck& check : result.checks) {
      if (check.name == pin.oracle && !check.pass) oracle_tripped = true;
    }
    EXPECT_TRUE(oracle_tripped)
        << pin.scenario << ": expected oracle '" << pin.oracle
        << "' to trip";
  }
}

TEST(ChaosRepros, PinnedReprosReplayBitIdentically) {
  // The whole repro contract: same campaign, same violation, same final
  // cross-layer state signature, run after run.
  for (const PinnedRepro& pin : kPinned) {
    const chaos::Campaign campaign = Rebuild(pin);
    const chaos::ScenarioResult first = chaos::RunScenario(campaign);
    const chaos::ScenarioResult second = chaos::RunScenario(campaign);
    EXPECT_EQ(first.signature, second.signature) << pin.scenario;
    EXPECT_EQ(first.faults_fired, second.faults_fired) << pin.scenario;
  }
}

TEST(ChaosRepros, PinnedReprosAreAlreadyMinimal) {
  // Shrinking a pinned repro must be a no-op — if it shrinks further, the
  // pin should be updated to the smaller schedule.
  for (const PinnedRepro& pin : kPinned) {
    const chaos::Campaign campaign = Rebuild(pin);
    chaos::ChaosEngine engine(chaos::ChaosConfig{});
    const chaos::Campaign minimal = engine.Shrink(campaign);
    EXPECT_EQ(chaos::FaultsText(minimal), chaos::FaultsText(campaign))
        << pin.scenario << ": pin is not minimal";
  }
}

}  // namespace
