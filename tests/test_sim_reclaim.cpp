#include "sim/reclaim.hpp"

#include <gtest/gtest.h>

#include "sim/address_space.hpp"
#include "sim/machine.hpp"

namespace daos::sim {
namespace {

MachineSpec TinySpec(std::uint64_t dram) {
  return MachineSpec{"tiny", 2, 3.0, dram};
}

TEST(Reclaimer, EvictsUntouchedPagesAfterTwoPasses) {
  Machine machine(TinySpec(GiB), SwapConfig::Zram(64 * MiB));
  AddressSpace space(1, &machine, 3.0);
  space.Map(0, 64 * kPageSize, "a");
  space.TouchRange(0, 64 * kPageSize, false, 0);
  space.MaintainLogs(20 * kUsPerSec);  // age the touch log out

  Reclaimer reclaimer(&machine);
  // First pass clears accessed state (second chance), second pass puts
  // pages on probation, third evicts.
  std::uint64_t got = 0;
  for (int pass = 0; pass < 3 && got < 16; ++pass) {
    got += reclaimer.Reclaim(16, 1024, 30 * kUsPerSec);
  }
  EXPECT_EQ(got, 16u);
  EXPECT_EQ(space.swapped_pages(), 16u);
}

TEST(Reclaimer, RespectsScanBudget) {
  Machine machine(TinySpec(GiB), SwapConfig::Zram(64 * MiB));
  AddressSpace space(1, &machine, 3.0);
  space.Map(0, 1024 * kPageSize, "a");
  space.TouchRange(0, 1024 * kPageSize, false, 0);
  space.MaintainLogs(20 * kUsPerSec);

  Reclaimer reclaimer(&machine);
  // A budget of 10 can never evict more than 10 pages.
  const std::uint64_t got = reclaimer.Reclaim(1000, 10, 30 * kUsPerSec);
  EXPECT_LE(got, 10u);
}

TEST(Reclaimer, DeactivatedPagesGoFirst) {
  Machine machine(TinySpec(GiB), SwapConfig::Zram(64 * MiB));
  AddressSpace space(1, &machine, 3.0);
  space.Map(0, 32 * kPageSize, "a");
  space.TouchRange(0, 32 * kPageSize, false, 0);
  // Only the first 8 pages are COLD-deactivated; they are evicted on the
  // very first pass, before anything else.
  space.DeactivateRange(0, 8 * kPageSize);
  Reclaimer reclaimer(&machine);
  const std::uint64_t got = reclaimer.Reclaim(8, 8, kUsPerSec);
  EXPECT_EQ(got, 8u);
  EXPECT_FALSE(space.IsResident(0));
  EXPECT_TRUE(space.IsResident(16 * kPageSize));
}

TEST(Reclaimer, RecentlyTouchedPagesSurvive) {
  Machine machine(TinySpec(GiB), SwapConfig::Zram(64 * MiB));
  AddressSpace space(1, &machine, 3.0);
  space.Map(0, 16 * kPageSize, "a");
  space.TouchRange(0, 16 * kPageSize, false, 0);
  Reclaimer reclaimer(&machine);
  // Touch log is fresh: every page looks young, nothing is evicted on the
  // first pass (budget == page count, so exactly one pass).
  const std::uint64_t got = reclaimer.Reclaim(16, 16, kUsPerMs);
  EXPECT_EQ(got, 0u);
  EXPECT_EQ(space.resident_pages(), 16u);
}

TEST(Reclaimer, NoSpacesNoCrash) {
  Machine machine(TinySpec(GiB), SwapConfig::Zram(64 * MiB));
  Reclaimer reclaimer(&machine);
  EXPECT_EQ(reclaimer.Reclaim(10, 100, 0), 0u);
}

TEST(MachinePressure, ReclaimTriggersAboveWatermark) {
  // 16 MiB of DRAM, map and touch ~15.6 MiB: over the 92 % watermark.
  Machine machine(TinySpec(16 * MiB), SwapConfig::Zram(64 * MiB));
  AddressSpace space(1, &machine, 3.0);
  const std::uint64_t pages = (15 * MiB + 600 * KiB) / kPageSize;
  space.Map(0, pages * kPageSize, "a");
  space.TouchRange(0, pages * kPageSize, false, 0);
  EXPECT_TRUE(machine.UnderPressure());
  space.MaintainLogs(20 * kUsPerSec);
  for (int i = 0; i < 10 && machine.UnderPressure(); ++i) {
    machine.RunReclaimIfNeeded(30 * kUsPerSec + i * kUsPerSec);
  }
  EXPECT_FALSE(machine.UnderPressure());
  EXPECT_GT(machine.counters().reclaimed_pages, 0u);
}

TEST(MachinePressure, NoSwapMeansOvercommit) {
  Machine machine(TinySpec(16 * MiB), SwapConfig::None());
  AddressSpace space(1, &machine, 3.0);
  const std::uint64_t pages = 16 * MiB / kPageSize;
  space.Map(0, pages * kPageSize, "a");
  space.TouchRange(0, pages * kPageSize, false, 0);
  space.MaintainLogs(20 * kUsPerSec);
  for (int i = 0; i < 5; ++i)
    machine.RunReclaimIfNeeded(30 * kUsPerSec + i * kUsPerSec);
  // Nothing can leave; the machine records the failure instead of looping.
  EXPECT_GT(machine.counters().overcommit_events, 0u);
  EXPECT_EQ(space.resident_pages(), pages);
}

TEST(MachinePressure, ZramFootprintCountsAsDramUse) {
  Machine machine(TinySpec(GiB), SwapConfig::Zram(64 * MiB));
  AddressSpace space(1, &machine, 2.0);
  space.Map(0, 32 * kPageSize, "a");
  space.TouchRange(0, 32 * kPageSize, true, 0);
  const std::uint64_t before = machine.dram_used_bytes();
  space.PageOutRange(0, 32 * kPageSize, 0);
  // Paging out to zram halves (ratio 2.0) the footprint, not zeroes it.
  EXPECT_EQ(machine.dram_used_bytes(), before / 2);
}

}  // namespace
}  // namespace daos::sim
