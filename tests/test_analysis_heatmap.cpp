#include "analysis/heatmap.hpp"

#include <gtest/gtest.h>

namespace daos::analysis {
namespace {

damon::Snapshot MakeSnapshot(SimTimeUs at,
                             std::vector<damon::SnapshotRegion> regions,
                             int target = 0) {
  damon::Snapshot s;
  s.at = at;
  s.target_index = target;
  s.regions = std::move(regions);
  return s;
}

TEST(FindActiveSubspaceTest, PicksHeaviestCluster) {
  // Two clusters: a small one near 0 and a heavily-accessed one at 1 TiB.
  std::vector<damon::Snapshot> snaps;
  snaps.push_back(MakeSnapshot(
      0, {{0x1000, 0x1000 + MiB, 1, 0},
          {0x10000000000, 0x10000000000 + 512 * MiB, 15, 0}}));
  const AddrSpan span = FindActiveSubspace(snaps, 0);
  EXPECT_EQ(span.lo, 0x10000000000u);
  EXPECT_EQ(span.hi, 0x10000000000u + 512 * MiB);
}

TEST(FindActiveSubspaceTest, MergesNearbyRanges) {
  std::vector<damon::Snapshot> snaps;
  snaps.push_back(MakeSnapshot(0, {{0, MiB, 5, 0},
                                   {MiB + 64 * MiB, 66 * MiB + MiB, 5, 0}}));
  // Gap of 64 MiB < default 1 GiB merge threshold: single cluster.
  const AddrSpan span = FindActiveSubspace(snaps, 0);
  EXPECT_EQ(span.lo, 0u);
  EXPECT_EQ(span.hi, 66 * MiB + MiB);
}

TEST(FindActiveSubspaceTest, IgnoresZeroAccessRegions) {
  std::vector<damon::Snapshot> snaps;
  snaps.push_back(MakeSnapshot(0, {{0, GiB, 0, 0}, {8 * GiB, 9 * GiB, 3, 0}}));
  const AddrSpan span = FindActiveSubspace(snaps, 0);
  EXPECT_EQ(span.lo, 8 * GiB);
}

TEST(FindActiveSubspaceTest, EmptyInput) {
  const AddrSpan span = FindActiveSubspace({}, 0);
  EXPECT_EQ(span.lo, span.hi);
}

TEST(BuildHeatmapTest, HotRowsAreBrighter) {
  std::vector<damon::Snapshot> snaps;
  for (int t = 0; t < 10; ++t) {
    snaps.push_back(MakeSnapshot(
        t * 100 * kUsPerMs,
        {{0, 32 * MiB, 18, 0},                     // hot low half
         {32 * MiB, 64 * MiB, 1, 0}}));            // cool high half
  }
  const Heatmap map = BuildHeatmap(snaps, 0, 5, 8);
  ASSERT_EQ(map.time_bins, 5u);
  ASSERT_EQ(map.addr_bins, 8u);
  EXPECT_GT(map.At(2, 0), map.At(2, 7));
  EXPECT_NEAR(map.At(2, 0), 18.0, 1e-9);
}

TEST(BuildHeatmapTest, TimeDynamicsCaptured) {
  // Hot region moves from low to high addresses halfway through.
  std::vector<damon::Snapshot> snaps;
  for (int t = 0; t < 10; ++t) {
    const bool late = t >= 5;
    snaps.push_back(MakeSnapshot(
        t * 100 * kUsPerMs,
        {{0, 32 * MiB, late ? 0u : 18u, 0},
         {32 * MiB, 64 * MiB, late ? 18u : 0u, 0}}));
  }
  const Heatmap map = BuildHeatmap(snaps, 0, 10, 8,
                                   AddrSpan{0, 64 * MiB});
  EXPECT_GT(map.At(1, 0), map.At(1, 7));
  EXPECT_LT(map.At(8, 0), map.At(8, 7));
}

TEST(BuildHeatmapTest, ExplicitSpanRespected) {
  std::vector<damon::Snapshot> snaps;
  snaps.push_back(MakeSnapshot(0, {{0, 64 * MiB, 9, 0}}));
  const Heatmap map =
      BuildHeatmap(snaps, 0, 2, 4, AddrSpan{32 * MiB, 64 * MiB});
  EXPECT_EQ(map.addr_lo, 32 * MiB);
  EXPECT_EQ(map.addr_hi, 64 * MiB);
}

TEST(BuildHeatmapTest, WrongTargetFilteredOut) {
  std::vector<damon::Snapshot> snaps;
  snaps.push_back(MakeSnapshot(0, {{0, MiB, 9, 0}}, /*target=*/1));
  const Heatmap map = BuildHeatmap(snaps, 0, 2, 2);
  EXPECT_DOUBLE_EQ(map.MaxCell(), 0.0);
}

TEST(BuildHeatmapTest, EmptyInputSafe) {
  const Heatmap map = BuildHeatmap({}, 0, 4, 4);
  EXPECT_DOUBLE_EQ(map.MaxCell(), 0.0);
}

TEST(RenderAsciiTest, ShapeAndShading) {
  std::vector<damon::Snapshot> snaps;
  for (int t = 0; t < 4; ++t) {
    snaps.push_back(MakeSnapshot(t * 100 * kUsPerMs,
                                 {{0, MiB, 20, 0}, {MiB, 2 * MiB, 0, 0}}));
  }
  const Heatmap map = BuildHeatmap(snaps, 0, 4, 8, AddrSpan{0, 2 * MiB});
  const std::string art = RenderAscii(map);
  // 4 rows of 8 chars + newlines.
  EXPECT_EQ(art.size(), 4 * 9u);
  EXPECT_EQ(art[0], '@');   // hottest cell uses the darkest shade
  EXPECT_EQ(art[7], ' ');   // idle cell is blank
}

TEST(ToCsvTest, HeaderAndRowCount) {
  std::vector<damon::Snapshot> snaps;
  snaps.push_back(MakeSnapshot(0, {{0, MiB, 5, 0}}));
  const Heatmap map = BuildHeatmap(snaps, 0, 3, 4, AddrSpan{0, MiB});
  const std::string csv = ToCsv(map);
  EXPECT_EQ(csv.find("time_s,addr_mib,frequency"), 0u);
  // 12 data lines + header.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 13);
}

}  // namespace
}  // namespace daos::analysis
