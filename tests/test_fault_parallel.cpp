// Fault-plane concurrency regression tests: `once=` must claim its check
// ordinal atomically when a shared point is checked from the work-stealing
// runner, and per-shard planes must stay bit-identical across DAOS_JOBS
// settings. Run under TSan in CI at DAOS_JOBS=4.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <vector>

#include "analysis/runner.hpp"
#include "chaos/engine.hpp"
#include "fault/fault.hpp"

namespace {

using namespace daos;

TEST(FaultParallel, OnceFiresExactlyOnceAcrossThreads) {
  fault::FaultPlane plane(7);
  std::string error;
  ASSERT_TRUE(plane.Configure("test.point once=1", &error)) << error;
  fault::FaultPoint& point = plane.Point("test.point");

  std::atomic<std::uint64_t> fired{0};
  analysis::ParallelRunner runner(4);
  runner.ForEach(4000, [&](std::size_t) {
    if (point.Check()) fired.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(fired.load(), 1u);
  EXPECT_EQ(point.hits(), 4000u);
  EXPECT_EQ(point.fires(), 1u);
}

TEST(FaultParallel, EveryNthCountsExactlyAcrossThreads) {
  fault::FaultPlane plane(7);
  std::string error;
  ASSERT_TRUE(plane.Configure("test.point every=10", &error)) << error;
  fault::FaultPoint& point = plane.Point("test.point");

  std::atomic<std::uint64_t> fired{0};
  analysis::ParallelRunner runner(4);
  runner.ForEach(4000, [&](std::size_t) {
    if (point.Check()) fired.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(fired.load(), 400u);
  EXPECT_EQ(point.hits(), 4000u);
  EXPECT_EQ(point.fires(), 400u);
}

TEST(FaultParallel, PerShardPlanesMatchSerialResult) {
  // 8 thread-confined planes checked in parallel must produce exactly the
  // per-plane sequences a serial run produces: `once=3` fires on the third
  // check of each plane regardless of scheduling.
  auto roll = [](unsigned jobs) {
    std::vector<std::unique_ptr<fault::FaultPlane>> planes;
    for (std::uint64_t i = 0; i < 8; ++i)
      planes.push_back(std::make_unique<fault::FaultPlane>(100 + i));
    std::vector<std::vector<bool>> fired(planes.size());
    std::string error;
    for (auto& plane : planes)
      EXPECT_TRUE(plane->Configure("shard.fault once=3", &error)) << error;
    analysis::ParallelRunner runner(jobs);
    runner.ForEach(planes.size(), [&](std::size_t i) {
      fault::FaultPoint& point = planes[i]->Point("shard.fault");
      for (int check = 0; check < 16; ++check)
        fired[i].push_back(point.Check());
    });
    return fired;
  };
  const auto serial = roll(1);
  const auto parallel = roll(4);
  ASSERT_EQ(serial, parallel);
  for (const auto& seq : serial) {
    std::size_t fires = 0;
    for (std::size_t check = 0; check < seq.size(); ++check)
      if (seq[check]) {
        ++fires;
        EXPECT_EQ(check, 2u) << "once=3 must fire on the third check";
      }
    EXPECT_EQ(fires, 1u);
  }
}

TEST(FaultParallel, ChaosShrinkMinimumIsJobsIndependent) {
  // The chaos shrinker probes entry drops across the pool; its
  // first-failing-index selection must make the minimized repro
  // bit-identical whether one worker probes or four race.
  chaos::Campaign failing;
  std::string error;
  ASSERT_TRUE(chaos::ParseCampaign("seed 17\nscenario workload\n"
                                   "chaos.synthetic once=1\n"
                                   "swap.write_error p=0.3\n"
                                   "alloc.frame_fail every=11\n"
                                   "fleet.shard_crash once=5\n",
                                   &failing, &error))
      << error;
  auto minimize = [&](unsigned jobs) {
    chaos::ChaosConfig config;
    config.jobs = jobs;
    chaos::ChaosEngine engine(config);
    return chaos::ReproLine(engine.Shrink(failing));
  };
  const std::string serial = minimize(1);
  const std::string parallel = minimize(4);
  EXPECT_EQ(serial, parallel);
  EXPECT_EQ(parallel, minimize(4)) << "rerun must be bit-identical";
}

}  // namespace
