// Page-state bitmap properties and sim-core bit-identity pins.
//
// The packed-bitmap core stores page flags as per-VMA uint64_t bit planes,
// so the interesting edge cases are the ones a flat struct array never had:
// VMA sizes that are not a multiple of 64 pages (partial tail words),
// range operations whose bounds land mid-word, THP collapse/split flipping
// 512 bits that may straddle words at odd offsets (unaligned VMA bases),
// and the monitor primitives at word boundaries.
//
// The digest test pins the whole stack: monitor snapshots on all 24
// evaluation profiles must stay bit-identical across sim-core rewrites.
// Goldens were recorded on the pre-overhaul core (16-byte Page structs,
// linear FindVma, dense quantum stepping); regenerate only for an
// intentional behaviour change, with DAOS_UPDATE_GOLDEN=1.
//
// The property tests use a bare Machine (no System), so no environment
// fault plane is attached and DAOS_FAULTS cannot perturb the exact counts.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "analysis/experiment.hpp"
#include "damon/recorder.hpp"
#include "sim/address_space.hpp"
#include "sim/machine.hpp"
#include "util/units.hpp"
#include "workload/profile.hpp"

namespace daos::sim {
namespace {

constexpr Addr kBase = 0x10000000;  // 2 MiB aligned

Machine MakeMachine(ThpMode thp = ThpMode::kNever) {
  return Machine(MachineSpec::I3Metal().GuestOf(), SwapConfig::Zram(), thp);
}

// --- partial tail words ------------------------------------------------------

TEST(BitmapTest, NonMultipleOf64VmaFullSweeps) {
  Machine machine = MakeMachine();
  AddressSpace space(1, &machine, 3.0);
  // 1000 pages: 15 full words plus a 40-bit tail.
  const std::uint64_t pages = 1000;
  space.Map(kBase, pages * kPageSize, "odd");
  space.TouchRange(kBase, kBase + pages * kPageSize, false, 0);
  EXPECT_EQ(space.resident_pages(), pages);

  // Every page and only mapped pages: the tail word's spare bits must not
  // leak into any count.
  EXPECT_EQ(space.DeactivateRange(kBase, kBase + pages * kPageSize),
            pages * kPageSize);
  const Vma* vma = space.FindVma(kBase);
  ASSERT_NE(vma, nullptr);
  for (std::uint64_t i = 0; i < pages; ++i) {
    const auto pg = vma->PageAt(kBase + i * kPageSize);
    EXPECT_TRUE(pg.Present());
    EXPECT_TRUE(pg.Deactivated()) << "page " << i;
  }

  std::uint64_t errors = 0;
  EXPECT_EQ(space.PageOutRange(kBase, kBase + pages * kPageSize, 0, &errors),
            pages * kPageSize);
  EXPECT_EQ(errors, 0u);
  EXPECT_EQ(space.resident_pages(), 0u);
  EXPECT_EQ(space.swapped_pages(), pages);
}

TEST(BitmapTest, MidWordRangeBounds) {
  Machine machine = MakeMachine();
  AddressSpace space(1, &machine, 3.0);
  const std::uint64_t pages = 1000;
  space.Map(kBase, pages * kPageSize, "odd");
  space.TouchRange(kBase, kBase + pages * kPageSize, false, 0);

  // [5, 937): starts and ends mid-word, spans full words in between.
  const Addr lo = kBase + 5 * kPageSize;
  const Addr hi = kBase + 937 * kPageSize;
  EXPECT_EQ(space.DeactivateRange(lo, hi), (937 - 5) * kPageSize);
  const Vma* vma = space.FindVma(kBase);
  ASSERT_NE(vma, nullptr);
  for (std::uint64_t i = 0; i < pages; ++i) {
    const bool in = i >= 5 && i < 937;
    EXPECT_EQ(vma->PageAt(kBase + i * kPageSize).Deactivated(), in)
        << "page " << i;
  }

  // Page the mid-word range out, then swap a different mid-word slice back
  // in; counts must match the exact page spans.
  EXPECT_EQ(space.PageOutRange(lo, hi, 0), (937 - 5) * kPageSize);
  EXPECT_EQ(space.swapped_pages(), 937 - 5);
  const Addr s_lo = kBase + 63 * kPageSize;
  const Addr s_hi = kBase + 130 * kPageSize;
  EXPECT_EQ(space.SwapInRange(s_lo, s_hi, 0), (130 - 63) * kPageSize);
  EXPECT_EQ(space.swapped_pages(), 937 - 5 - (130 - 63));
  for (std::uint64_t i = 60; i < 135; ++i) {
    const bool resident = i >= 63 && i < 130;
    EXPECT_EQ(space.IsResident(kBase + i * kPageSize), resident)
        << "page " << i;
  }
}

// --- monitor primitives at word boundaries -----------------------------------

TEST(BitmapTest, MkOldIsYoungWordBoundaries) {
  Machine machine = MakeMachine();
  AddressSpace space(1, &machine, 3.0);
  const std::uint64_t pages = 200;
  space.Map(kBase, pages * kPageSize, "mon");
  // Per-page touches only: IsYoung must reflect the accessed bit alone
  // (TouchPage does not write the range log).
  for (std::uint64_t i = 0; i < pages; ++i)
    space.TouchPage(kBase + i * kPageSize, false, 0);

  for (const std::uint64_t i : {std::uint64_t{63}, std::uint64_t{64},
                                std::uint64_t{65}, std::uint64_t{127},
                                std::uint64_t{128}}) {
    space.MkOld(kBase + i * kPageSize, 0);
  }
  for (std::uint64_t i = 0; i < pages; ++i) {
    const bool cleared = i == 63 || i == 64 || i == 65 || i == 127 || i == 128;
    EXPECT_EQ(space.IsYoung(kBase + i * kPageSize), !cleared) << "page " << i;
  }
  // Re-touch exactly one cleared page; its neighbours must stay old.
  space.TouchPage(kBase + 64 * kPageSize, false, 0);
  EXPECT_TRUE(space.IsYoung(kBase + 64 * kPageSize));
  EXPECT_FALSE(space.IsYoung(kBase + 63 * kPageSize));
  EXPECT_FALSE(space.IsYoung(kBase + 65 * kPageSize));
}

// --- THP collapse/split: 512 bits at a time ---------------------------------

TEST(BitmapTest, ThpCollapseSetsAndSplitClears512Bits) {
  Machine machine = MakeMachine(ThpMode::kAlways);
  AddressSpace space(1, &machine, 3.0);
  const std::uint64_t pages = 1024;  // two full 2 MiB blocks
  space.Map(kBase, pages * kPageSize, "thp");

  // THP `always`: the first fault in an empty, fully-mapped block collapses
  // the whole thing — 512 present+huge bits set in one operation.
  space.TouchPage(kBase, false, 0);
  EXPECT_EQ(space.resident_pages(), 512u);
  EXPECT_EQ(space.huge_blocks(), 1u);
  EXPECT_EQ(space.bloat_pages(), 511u);
  const Vma* vma = space.FindVma(kBase);
  ASSERT_NE(vma, nullptr);
  for (std::uint64_t i = 0; i < pages; ++i) {
    const auto pg = vma->PageAt(kBase + i * kPageSize);
    EXPECT_EQ(pg.Present(), i < 512) << "page " << i;
    EXPECT_EQ(pg.Huge(), i < 512) << "page " << i;
  }

  // NOHUGEPAGE split: clears the 512 huge bits and frees the never-touched
  // bloat — only the one genuinely touched page survives.
  EXPECT_EQ(space.DemoteRange(kBase, kBase + 512 * kPageSize),
            511 * kPageSize);
  EXPECT_EQ(space.huge_blocks(), 0u);
  EXPECT_EQ(space.bloat_pages(), 0u);
  EXPECT_EQ(space.resident_pages(), 1u);
  Vma* v = space.FindVma(kBase);
  for (std::uint64_t i = 0; i < pages; ++i)
    EXPECT_FALSE(v->PageAt(kBase + i * kPageSize).Huge()) << "page " << i;
  EXPECT_TRUE(v->PageAt(kBase).Present());
}

TEST(BitmapTest, UnalignedVmaBlockSpansCrossWordsMidway) {
  // A VMA whose base is page- but not 2MiB-aligned: block boundaries land
  // at page index 500 inside the VMA (12 pages shy of the aligned base), so
  // the 512-bit huge span starts mid-word and ends mid-word.
  Machine machine = MakeMachine(ThpMode::kAlways);
  AddressSpace space(1, &machine, 3.0);
  const Addr base = kBase + 12 * kPageSize;
  const std::uint64_t pages = 1536 - 12;  // through block 2's start
  space.Map(base, pages * kPageSize, "skew");
  Vma* vma = space.FindVma(base);
  ASSERT_NE(vma, nullptr);
  // Block 1 is the first fully-covered 2 MiB block: VMA pages [500, 1012).
  ASSERT_TRUE(vma->BlockIsFull(1));
  const auto span = vma->BlockPageSpan(1);
  ASSERT_EQ(span.first, 500u);
  ASSERT_EQ(span.second, 1012u);

  space.TouchPage(base + 600 * kPageSize, false, 0);  // faults block 1 huge
  EXPECT_EQ(space.huge_blocks(), 1u);
  EXPECT_EQ(space.resident_pages(), 512u);
  vma = space.FindVma(base);
  for (std::uint64_t i = 0; i < pages; ++i) {
    const bool in = i >= 500 && i < 1012;
    EXPECT_EQ(vma->PageAt(base + i * kPageSize).Huge(), in) << "page " << i;
  }
  EXPECT_EQ(space.DemoteRange(base, base + pages * kPageSize),
            511 * kPageSize);
  EXPECT_EQ(space.resident_pages(), 1u);
  EXPECT_TRUE(space.IsResident(base + 600 * kPageSize));
}

// --- eviction probation bits across words ------------------------------------

TEST(BitmapTest, DeactivatedBypassesProbationAcrossWords) {
  Machine machine = MakeMachine();
  AddressSpace space(1, &machine, 3.0);
  const std::uint64_t pages = 130;  // spans three words
  space.Map(kBase, pages * kPageSize, "probation");
  space.TouchRange(kBase, kBase + pages * kPageSize, false, 0);
  // Deactivate a mid-word slice; DirectReclaim must take exactly those
  // pages first (deactivated pages skip CLOCK probation).
  space.DeactivateRange(kBase + 60 * kPageSize, kBase + 70 * kPageSize);
  const std::uint64_t evicted = machine.DirectReclaim(10, 0);
  EXPECT_EQ(evicted, 10u);
  for (std::uint64_t i = 0; i < pages; ++i) {
    const bool kept = i < 60 || i >= 70;
    EXPECT_EQ(space.IsResident(kBase + i * kPageSize), kept) << "page " << i;
  }
}

}  // namespace
}  // namespace daos::sim

// --- monitor-snapshot bit-identity over the 24 evaluation profiles -----------

namespace daos {
namespace {

std::uint64_t Fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= 1099511628211ull;
  }
  return h;
}

/// Digest of everything the monitor reported: every snapshot's timestamp,
/// target and region rows, in order.
std::uint64_t DigestSnapshots(const std::vector<damon::Snapshot>& snaps) {
  std::uint64_t h = 1469598103934665603ull;
  h = Fnv1a(h, snaps.size());
  for (const damon::Snapshot& s : snaps) {
    h = Fnv1a(h, static_cast<std::uint64_t>(s.at));
    h = Fnv1a(h, static_cast<std::uint64_t>(s.target_index));
    h = Fnv1a(h, s.regions.size());
    for (const damon::SnapshotRegion& r : s.regions) {
      h = Fnv1a(h, r.start);
      h = Fnv1a(h, r.end);
      h = Fnv1a(h, r.nr_accesses);
      h = Fnv1a(h, r.age);
    }
  }
  return h;
}

TEST(SimCoreGoldenTest, MonitorSnapshotsAll24Profiles) {
  if (std::getenv("DAOS_FAULTS") != nullptr)
    GTEST_SKIP() << "golden digests assume a fault-free run";

  analysis::ExperimentOptions opt;
  opt.max_time = 12 * kUsPerSec;
  opt.apply_runtime_noise = false;
  opt.seed = 1;

  std::map<std::string, std::string> actual;
  for (const workload::WorkloadProfile& profile : workload::AllProfiles()) {
    damon::Recorder recorder;
    const analysis::ExperimentResult r = analysis::RunWorkload(
        profile, analysis::Config::kRec, opt, nullptr, &recorder);
    ASSERT_FALSE(recorder.snapshots().empty()) << profile.name;
    char line[128];
    std::snprintf(line, sizeof line, "%016llx,%llu,%llu",
                  static_cast<unsigned long long>(
                      DigestSnapshots(recorder.snapshots())),
                  static_cast<unsigned long long>(r.peak_rss_bytes),
                  static_cast<unsigned long long>(r.major_faults));
    actual[profile.name] = line;
  }

  const std::string golden_path =
      std::string(DAOS_GOLDEN_DIR) + "/monitor_digests.csv";
  if (std::getenv("DAOS_UPDATE_GOLDEN") != nullptr) {
    std::FILE* f = std::fopen(golden_path.c_str(), "wb");
    ASSERT_NE(f, nullptr) << "cannot write " << golden_path;
    std::fprintf(f, "workload,snapshot_digest,peak_rss_bytes,major_faults\n");
    for (const auto& [name, line] : actual)
      std::fprintf(f, "%s,%s\n", name.c_str(), line.c_str());
    std::fclose(f);
    GTEST_SKIP() << "golden regenerated at " << golden_path;
  }

  std::FILE* f = std::fopen(golden_path.c_str(), "rb");
  ASSERT_NE(f, nullptr) << "missing golden " << golden_path
                        << " (run once with DAOS_UPDATE_GOLDEN=1)";
  char buf[256];
  ASSERT_NE(std::fgets(buf, sizeof buf, f), nullptr);  // header
  std::map<std::string, std::string> golden;
  while (std::fgets(buf, sizeof buf, f) != nullptr) {
    std::string line(buf);
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r'))
      line.pop_back();
    const std::size_t comma = line.find(',');
    ASSERT_NE(comma, std::string::npos);
    golden[line.substr(0, comma)] = line.substr(comma + 1);
  }
  std::fclose(f);

  ASSERT_EQ(golden.size(), actual.size());
  for (const auto& [name, line] : actual) {
    ASSERT_TRUE(golden.count(name)) << name;
    EXPECT_EQ(golden[name], line)
        << name << ": monitor snapshots diverged from the pre-overhaul core";
  }
}

}  // namespace
}  // namespace daos
