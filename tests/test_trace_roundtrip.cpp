// Record -> replay round-trip properties (src/trace).
//
// The contract under test (DESIGN §11): a trace captures a workload's
// touch stream exactly, so replaying it under the recorded config and
// seed reproduces the recorded run bit-for-bit — same runtime, same RSS
// trajectory, same fault counts, same monitor snapshots, same scheme
// stats. And since a replay profile is a first-class workload, the
// parallel-runner determinism contract and the checkpoint/restore
// identity must keep holding when the workload is a trace.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/experiment.hpp"
#include "analysis/runner.hpp"
#include "damon/primitives.hpp"
#include "damon/recorder.hpp"
#include "fault/fault.hpp"
#include "lifecycle/supervisor.hpp"
#include "sim/address_space.hpp"
#include "sim/system.hpp"
#include "trace/format.hpp"
#include "trace/replay.hpp"
#include "trace/writer.hpp"
#include "util/units.hpp"
#include "workload/profile.hpp"

namespace {

using namespace daos;

/// Shrinks a profile so a record+replay pair stays test-sized while the
/// access pattern (groups, zipf, scenario source) is untouched in shape.
workload::WorkloadProfile Shrunk(const char* name) {
  workload::WorkloadProfile p = *workload::FindProfile(name);
  if (p.data_bytes > 128 * MiB) p.data_bytes = 128 * MiB;
  p.runtime_s = 10.0;
  p.noise = 0.0;
  return p;
}

trace::TraceMeta MetaFor(const workload::WorkloadProfile& p) {
  trace::TraceMeta meta;
  meta.name = p.name;
  meta.data_bytes = p.data_bytes;
  meta.runtime_s = p.runtime_s;
  meta.mem_boundness = p.mem_boundness;
  meta.thp_gain = p.thp_gain;
  meta.zram_ratio = p.zram_ratio;
  return meta;
}

std::string TracePathFor(const workload::WorkloadProfile& p,
                         std::uint64_t seed) {
  std::string file = p.name;
  for (char& c : file) {
    if (c == '/') c = '_';
  }
  return ::testing::TempDir() + "/" + file + "_" + std::to_string(seed) +
         ".dtr";
}

void ExpectResultsIdentical(const analysis::ExperimentResult& a,
                            const analysis::ExperimentResult& b) {
  EXPECT_EQ(a.runtime_s, b.runtime_s);
  EXPECT_EQ(a.finished, b.finished);
  EXPECT_EQ(a.avg_rss_bytes, b.avg_rss_bytes);
  EXPECT_EQ(a.peak_rss_bytes, b.peak_rss_bytes);
  EXPECT_EQ(a.major_faults, b.major_faults);
  EXPECT_EQ(a.monitor_cpu_fraction, b.monitor_cpu_fraction);
  EXPECT_EQ(a.interference_s, b.interference_s);
  ASSERT_EQ(a.scheme_stats.size(), b.scheme_stats.size());
  for (std::size_t i = 0; i < a.scheme_stats.size(); ++i) {
    EXPECT_EQ(a.scheme_stats[i].nr_tried, b.scheme_stats[i].nr_tried);
    EXPECT_EQ(a.scheme_stats[i].sz_tried, b.scheme_stats[i].sz_tried);
    EXPECT_EQ(a.scheme_stats[i].nr_applied, b.scheme_stats[i].nr_applied);
    EXPECT_EQ(a.scheme_stats[i].sz_applied, b.scheme_stats[i].sz_applied);
  }
}

void ExpectSnapshotsIdentical(const std::vector<damon::Snapshot>& a,
                              const std::vector<damon::Snapshot>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].at, b[i].at);
    EXPECT_EQ(a[i].target_index, b[i].target_index);
    ASSERT_EQ(a[i].regions.size(), b[i].regions.size()) << "snapshot " << i;
    for (std::size_t r = 0; r < a[i].regions.size(); ++r) {
      EXPECT_EQ(a[i].regions[r].start, b[i].regions[r].start);
      EXPECT_EQ(a[i].regions[r].end, b[i].regions[r].end);
      EXPECT_EQ(a[i].regions[r].nr_accesses, b[i].regions[r].nr_accesses);
      EXPECT_EQ(a[i].regions[r].age, b[i].regions[r].age);
    }
  }
}

// --- the core property: record -> replay is the identity --------------------

TEST(TraceRoundTripProperty, RecordReplayBitIdentityAcrossProfilesAndSeeds) {
  // Three profile shapes (zipf KV point ops, adversarial striping, a
  // paper-suite synthetic) x two seeds, all under the monitored prcl
  // config so the comparison covers monitor snapshots and scheme stats.
  const char* names[] = {"scenario/kvstore", "scenario/antimerge",
                         "parsec3/freqmine"};
  for (const char* name : names) {
    for (const std::uint64_t seed : {3ull, 11ull}) {
      SCOPED_TRACE(std::string(name) + " seed " + std::to_string(seed));
      const workload::WorkloadProfile profile = Shrunk(name);

      trace::TraceWriter writer(MetaFor(profile));
      analysis::ExperimentOptions options;
      options.apply_runtime_noise = false;
      options.seed = seed;
      options.record_tap = &writer;
      damon::Recorder recorded_snaps;
      const analysis::ExperimentResult recorded =
          analysis::RunWorkload(profile, analysis::Config::kPrcl, options,
                                nullptr, &recorded_snaps);
      ASSERT_TRUE(recorded.finished);
      ASSERT_GT(writer.events(), 0u);

      const std::string path = TracePathFor(profile, seed);
      std::string error;
      ASSERT_TRUE(writer.WriteFile(path, &error)) << error;
      const std::optional<workload::WorkloadProfile> replay_profile =
          workload::ResolveProfile("trace:" + path, &error);
      ASSERT_TRUE(replay_profile.has_value()) << error;

      analysis::ExperimentOptions replay_options;
      replay_options.apply_runtime_noise = false;
      replay_options.seed = seed;
      damon::Recorder replayed_snaps;
      const analysis::ExperimentResult replayed =
          analysis::RunWorkload(*replay_profile, analysis::Config::kPrcl,
                                replay_options, nullptr, &replayed_snaps);

      ExpectResultsIdentical(recorded, replayed);
      ExpectSnapshotsIdentical(recorded_snaps.snapshots(),
                               replayed_snaps.snapshots());
    }
  }
}

// --- replay under crash/restore ---------------------------------------------

constexpr Addr kBase = 1 * GiB;
constexpr std::uint64_t kHeap = 64 * MiB;
constexpr char kGovernedScheme[] =
    "min max min min 1s max pageout quota_sz=4M quota_reset_ms=1000 "
    "prio_weights=3,7,1";

/// A supervised kdamond over a bare space, fault plane overridden so
/// DAOS_FAULTS cannot perturb the golden comparison. Unlike the
/// checkpoint-test rig the space starts empty: the replayed trace's own
/// kMap events build the layout.
struct ReplayRig {
  fault::FaultPlane plane;
  sim::System system;
  sim::AddressSpace space;
  lifecycle::KdamondSupervisor supervisor;

  ReplayRig()
      : system(sim::MachineSpec{"rply", 4, 3.0, 4 * GiB},
               sim::SwapConfig::Zram()),
        space(1, &system.machine(), 3.0),
        supervisor(lifecycle::SupervisorConfig{}) {
    sim::AddressSpace* target = &space;
    supervisor.SetTargetFactory([target](damon::DamonContext& ctx) {
      ctx.AddTarget(std::make_unique<damon::VaddrPrimitives>(target));
    });
    supervisor.AttachTo(system);
    system.SetFaultPlane(&plane);
  }

  void InstallOrDie(const char* schemes) {
    std::string error;
    ASSERT_TRUE(supervisor.InstallSchemesFromText(schemes, &error)) << error;
  }
};

/// Map + populate at t=0, then a rotating 8 MiB hot window every 250 ms —
/// enough churn to keep splits, merges and quota charging busy across the
/// restore point.
trace::Trace ShiftingHotTrace() {
  trace::Trace t;
  t.meta.name = "hotshift";
  t.meta.data_bytes = kHeap;
  t.meta.runtime_s = 4.0;
  t.events.push_back({0, trace::TraceOp::kMap, false, PageOf(kBase),
                      kHeap >> kPageShift, "heap"});
  t.events.push_back({0, trace::TraceOp::kTouchRange, true, PageOf(kBase),
                      kHeap >> kPageShift, ""});
  for (SimTimeUs now = 250 * kUsPerMs; now < 4 * kUsPerSec;
       now += 250 * kUsPerMs) {
    const Addr hot = kBase + (now / (250 * kUsPerMs) % 4) * (8 * MiB);
    t.events.push_back({now, trace::TraceOp::kTouchRange, true, PageOf(hot),
                        (8 * MiB) >> kPageShift, ""});
  }
  return t;
}

TEST(TraceRoundTripProperty, ReplayUnderCrashRestoreReconverges) {
  // Two identical rigs replay the same shared trace in lockstep; mid-run,
  // B's kdamond is torn down and rebuilt from its own checkpoint. If both
  // restore and replay are faithful, A and B's checkpoints stay
  // byte-identical for every window after the crash point.
  const auto trace_data =
      std::make_shared<const trace::Trace>(ShiftingHotTrace());
  ReplayRig a;
  ReplayRig b;
  trace::TraceReplaySource replay_a(trace_data);
  trace::TraceReplaySource replay_b(trace_data);
  a.InstallOrDie(kGovernedScheme);
  b.InstallOrDie(kGovernedScheme);

  auto run_lockstep = [&](SimTimeUs until) {
    while (a.system.Now() < until) {
      replay_a.EmitQuantum(a.space, a.system.Now(), 5 * kUsPerMs);
      replay_b.EmitQuantum(b.space, b.system.Now(), 5 * kUsPerMs);
      a.system.Step();
      b.system.Step();
    }
  };

  run_lockstep(2 * kUsPerSec);
  const std::string at_2s_a = a.supervisor.CaptureCheckpointText();
  const std::string at_2s_b = b.supervisor.CaptureCheckpointText();
  ASSERT_EQ(at_2s_a, at_2s_b) << "lockstep baseline diverged";

  std::string error;
  ASSERT_TRUE(b.supervisor.RestoreFromText(at_2s_b, &error)) << error;

  run_lockstep(5 * kUsPerSec);
  EXPECT_TRUE(replay_a.exhausted());
  EXPECT_EQ(replay_a.delivered(), replay_b.delivered());
  EXPECT_EQ(a.supervisor.CaptureCheckpointText(),
            b.supervisor.CaptureCheckpointText());
}

// --- parallel runner determinism with trace and scenario workloads ----------

TEST(TraceRoundTripProperty, ReplayAndScenarioIdenticalUnderParallelRunner) {
  // Record a small scenario trace, then run a grid mixing the replay
  // profile (shared in-memory trace) with a scenario profile at 1 and 3
  // workers: results must be bit-identical — the contract that lets the
  // fig grids run trace workloads under DAOS_JOBS.
  const workload::WorkloadProfile source = Shrunk("scenario/graph");
  trace::TraceWriter writer(MetaFor(source));
  analysis::ExperimentOptions rec_options;
  rec_options.apply_runtime_noise = false;
  rec_options.seed = 5;
  rec_options.record_tap = &writer;
  analysis::RunWorkload(source, analysis::Config::kBaseline, rec_options);

  const std::string path = TracePathFor(source, 5);
  std::string error;
  ASSERT_TRUE(writer.WriteFile(path, &error)) << error;
  const std::optional<workload::WorkloadProfile> replay_profile =
      workload::ResolveProfile("trace:" + path, &error);
  ASSERT_TRUE(replay_profile.has_value()) << error;

  std::vector<analysis::RunSpec> specs;
  for (const workload::WorkloadProfile& profile :
       {*replay_profile, Shrunk("scenario/antimerge")}) {
    for (const analysis::Config config :
         {analysis::Config::kBaseline, analysis::Config::kPrcl}) {
      for (const std::uint64_t seed : {1ull, 2ull}) {
        analysis::RunSpec spec;
        spec.profile = profile;
        spec.config = config;
        spec.options.apply_runtime_noise = false;
        spec.options.seed = seed;
        specs.push_back(spec);
      }
    }
  }

  analysis::ParallelRunner serial(1);
  analysis::ParallelRunner parallel(3);
  const auto serial_results = serial.Run(specs);
  const auto parallel_results = parallel.Run(specs);
  ASSERT_EQ(serial_results.size(), parallel_results.size());
  for (std::size_t i = 0; i < serial_results.size(); ++i) {
    SCOPED_TRACE("spec " + std::to_string(i));
    ExpectResultsIdentical(serial_results[i], parallel_results[i]);
  }
}

// --- profile resolution errors ----------------------------------------------

TEST(TraceProfileTest, ResolveErrorsAreAccurate) {
  std::string error;
  EXPECT_FALSE(
      workload::ResolveProfile("trace:/no/such/file.dtr", &error).has_value());
  EXPECT_NE(error.find("/no/such/file.dtr"), std::string::npos) << error;
  EXPECT_FALSE(workload::ResolveProfile("nope/missing", &error).has_value());
  EXPECT_NE(error.find("unknown workload"), std::string::npos) << error;
}

}  // namespace
