#include "sim/thp.hpp"

#include <gtest/gtest.h>

#include "sim/address_space.hpp"
#include "sim/machine.hpp"

namespace daos::sim {
namespace {

MachineSpec SmallSpec() { return MachineSpec{"test", 4, 3.0, 4 * GiB}; }

TEST(ThpFaultPath, AlwaysModePromotesEmptyFullBlock) {
  Machine machine(SmallSpec(), SwapConfig::Zram(), ThpMode::kAlways);
  AddressSpace space(1, &machine, 3.0);
  space.Map(0, 4 * kHugePageSize, "heap");
  // One touch in an empty, fully-mapped block allocates the whole block.
  space.TouchPage(kHugePageSize + 5 * kPageSize, false, 0);
  EXPECT_EQ(space.resident_pages(), kPagesPerHuge);
  EXPECT_EQ(space.huge_blocks(), 1u);
  // Every sub-page except the touched one is bloat.
  EXPECT_EQ(space.bloat_pages(), kPagesPerHuge - 1);
}

TEST(ThpFaultPath, NeverModeFaultsSinglePage) {
  Machine machine(SmallSpec(), SwapConfig::Zram(), ThpMode::kNever);
  AddressSpace space(1, &machine, 3.0);
  space.Map(0, 4 * kHugePageSize, "heap");
  space.TouchPage(kHugePageSize, false, 0);
  EXPECT_EQ(space.resident_pages(), 1u);
  EXPECT_EQ(space.huge_blocks(), 0u);
}

TEST(ThpFaultPath, PartialBlockNotPromotedOnFault) {
  Machine machine(SmallSpec(), SwapConfig::Zram(), ThpMode::kAlways);
  AddressSpace space(1, &machine, 3.0);
  space.Map(0, 4 * kHugePageSize, "heap");
  // Make the block partially resident first (simulating pre-THP state).
  machine.set_thp_mode(ThpMode::kNever);
  space.TouchPage(0, false, 0);
  machine.set_thp_mode(ThpMode::kAlways);
  space.TouchPage(kPageSize, false, 0);
  EXPECT_EQ(space.resident_pages(), 2u);
  EXPECT_EQ(space.huge_blocks(), 0u);
}

TEST(ThpFaultPath, HugeFaultCostsMoreThanBaseFault) {
  Machine always(SmallSpec(), SwapConfig::Zram(), ThpMode::kAlways);
  AddressSpace huge_space(1, &always, 3.0);
  huge_space.Map(0, 2 * kHugePageSize, "heap");
  const TouchStats huge = huge_space.TouchPage(0, false, 0);

  Machine never(SmallSpec(), SwapConfig::Zram(), ThpMode::kNever);
  AddressSpace base_space(2, &never, 3.0);
  base_space.Map(0, 2 * kHugePageSize, "heap");
  const TouchStats base = base_space.TouchPage(0, false, 0);
  // The paper's THP latency spikes: huge allocation is much slower.
  EXPECT_GT(huge.stall_us, base.stall_us * 10);
}

TEST(ThpTouch, HugeBackedTouchCountsAsHuge) {
  Machine machine(SmallSpec(), SwapConfig::Zram(), ThpMode::kAlways);
  AddressSpace space(1, &machine, 3.0);
  space.Map(0, 2 * kHugePageSize, "heap");
  space.TouchPage(0, false, 0);
  const TouchStats st = space.TouchPage(kPageSize, false, 0);
  EXPECT_EQ(st.huge_pages, 1u);
}

TEST(ThpTouch, TouchClearsBloatFlag) {
  Machine machine(SmallSpec(), SwapConfig::Zram(), ThpMode::kAlways);
  AddressSpace space(1, &machine, 3.0);
  space.Map(0, 2 * kHugePageSize, "heap");
  space.TouchPage(0, false, 0);
  const std::uint64_t before = space.bloat_pages();
  space.TouchPage(17 * kPageSize, false, 0);
  EXPECT_EQ(space.bloat_pages(), before - 1);
}

TEST(ThpDemote, FreesUntouchedBloat) {
  Machine machine(SmallSpec(), SwapConfig::Zram(), ThpMode::kAlways);
  AddressSpace space(1, &machine, 3.0);
  space.Map(0, 2 * kHugePageSize, "heap");
  space.TouchPage(0, false, 0);
  space.TouchPage(kPageSize, false, 0);
  ASSERT_EQ(space.resident_pages(), kPagesPerHuge);
  const std::uint64_t freed = space.DemoteRange(0, kHugePageSize);
  // All but the two touched pages go back.
  EXPECT_EQ(freed, (kPagesPerHuge - 2) * kPageSize);
  EXPECT_EQ(space.resident_pages(), 2u);
  EXPECT_EQ(space.huge_blocks(), 0u);
  EXPECT_EQ(space.bloat_pages(), 0u);
}

TEST(ThpPromote, PromoteRangeNeedsHalfOverlap) {
  Machine machine(SmallSpec(), SwapConfig::Zram(), ThpMode::kNever);
  AddressSpace space(1, &machine, 3.0);
  space.Map(0, 4 * kHugePageSize, "heap");
  space.TouchPage(0, false, 0);
  // Range covering only a quarter of block 0: no promotion.
  EXPECT_EQ(space.PromoteRange(0, kHugePageSize / 4, 0), 0u);
  EXPECT_EQ(space.huge_blocks(), 0u);
  // Range covering 1.5 blocks: block 0 promoted, block 1 promoted (covers
  // exactly half).
  space.PromoteRange(0, kHugePageSize + kHugePageSize / 2, 0);
  EXPECT_GE(space.huge_blocks(), 1u);
}

TEST(ThpPromote, PromoteIsIdempotent) {
  Machine machine(SmallSpec(), SwapConfig::Zram(), ThpMode::kNever);
  AddressSpace space(1, &machine, 3.0);
  space.Map(0, 2 * kHugePageSize, "heap");
  space.TouchPage(0, false, 0);
  const std::uint64_t first = space.PromoteRange(0, kHugePageSize, 0);
  EXPECT_GT(first, 0u);
  EXPECT_EQ(space.PromoteRange(0, kHugePageSize, 0), 0u);
  EXPECT_EQ(space.huge_blocks(), 1u);
}

TEST(ThpPromote, SwappedSubPagesPulledIn) {
  Machine machine(SmallSpec(), SwapConfig::Zram(), ThpMode::kNever);
  AddressSpace space(1, &machine, 3.0);
  space.Map(0, kHugePageSize, "heap");
  space.TouchRange(0, kHugePageSize, true, 0);
  space.PageOutRange(0, 8 * kPageSize, 0);
  ASSERT_EQ(space.swapped_pages(), 8u);
  space.PromoteRange(0, kHugePageSize, 0);
  EXPECT_EQ(space.swapped_pages(), 0u);
  EXPECT_EQ(space.resident_pages(), kPagesPerHuge);
}

TEST(ThpPageout, PageoutDemotesFirst) {
  Machine machine(SmallSpec(), SwapConfig::Zram(), ThpMode::kAlways);
  AddressSpace space(1, &machine, 3.0);
  space.Map(0, kHugePageSize, "heap");
  space.TouchPage(0, true, 0);  // whole block resident + huge
  const std::uint64_t evicted = space.PageOutRange(0, kHugePageSize, 0);
  // The one touched page swaps out; bloat pages were freed by the demote.
  EXPECT_EQ(evicted, kPageSize);
  EXPECT_EQ(space.resident_pages(), 0u);
  EXPECT_EQ(space.swapped_pages(), 1u);
}

TEST(Khugepaged, CollapsesPartialBlocksSlowly) {
  Machine machine(SmallSpec(), SwapConfig::Zram(), ThpMode::kAlways);
  AddressSpace space(1, &machine, 3.0);
  space.Map(0, 32 * kHugePageSize, "heap");
  // Sparse single-page touches in many distinct blocks while THP is off,
  // so the fault path cannot promote.
  machine.set_thp_mode(ThpMode::kNever);
  for (std::uint64_t b = 0; b < 32; ++b)
    space.TouchPage(b * kHugePageSize, false, 0);
  machine.set_thp_mode(ThpMode::kAlways);
  const std::uint64_t collapsed = RunKhugepagedScan(machine, 8, kUsPerSec);
  EXPECT_EQ(collapsed, 8u);  // budget bound, not all 32
  EXPECT_EQ(space.huge_blocks(), 8u);
}

TEST(Khugepaged, MachineDrivesPeriodically) {
  Machine machine(SmallSpec(), SwapConfig::Zram(), ThpMode::kAlways);
  AddressSpace space(1, &machine, 3.0);
  space.Map(0, 4 * kHugePageSize, "heap");
  machine.set_thp_mode(ThpMode::kNever);
  space.TouchPage(0, false, 0);
  machine.set_thp_mode(ThpMode::kAlways);
  machine.RunKhugepaged(0);
  EXPECT_GT(machine.counters().khugepaged_collapses, 0u);
  const std::uint64_t after_first = machine.counters().khugepaged_collapses;
  // Immediately re-running does nothing (10 s period).
  machine.RunKhugepaged(kUsPerSec);
  EXPECT_EQ(machine.counters().khugepaged_collapses, after_first);
}

TEST(Khugepaged, NeverModeDoesNothing) {
  Machine machine(SmallSpec(), SwapConfig::Zram(), ThpMode::kNever);
  AddressSpace space(1, &machine, 3.0);
  space.Map(0, 4 * kHugePageSize, "heap");
  space.TouchPage(0, false, 0);
  machine.RunKhugepaged(0);
  EXPECT_EQ(machine.counters().khugepaged_collapses, 0u);
}

}  // namespace
}  // namespace daos::sim
